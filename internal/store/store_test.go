package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// bootEdges is a small deterministic bootstrap set: a ring plus chords over
// 16 vertices at time 1, dense enough for a non-trivial k=2 core.
func bootEdges() []tgraph.RawEdge {
	var es []tgraph.RawEdge
	for i := int64(0); i < 16; i++ {
		es = append(es, tgraph.RawEdge{U: i, V: (i + 1) % 16, Time: 1})
		es = append(es, tgraph.RawEdge{U: i, V: (i + 3) % 16, Time: 1})
	}
	return es
}

// batchAt builds append batch i: seven edges, all at time i+2 so every batch
// adds at least one edge and bumps the sequence by exactly one.
func batchAt(i int) []tgraph.RawEdge {
	var es []tgraph.RawEdge
	for j := 0; j < 7; j++ {
		u := int64((i*7 + j) % 20)
		v := (u + 1 + int64(j%11)) % 20
		es = append(es, tgraph.RawEdge{U: u, V: v, Time: int64(i + 2)})
	}
	return es
}

// refGraph rebuilds the quiesced reference: bootstrap plus the first n
// batches, through plain tgraph calls with no store involved.
func refGraph(t testing.TB, n int) *tgraph.Graph {
	t.Helper()
	g, err := tgraph.FromRawEdges(bootEdges())
	if err != nil {
		t.Fatalf("reference bootstrap: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := g.Append(batchAt(i)); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
	}
	return g
}

func segBytes(t testing.TB, g *tgraph.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := g.WriteSegments(&b); err != nil {
		t.Fatalf("WriteSegments: %v", err)
	}
	return b.Bytes()
}

func requireSegEqual(t testing.TB, got, want *tgraph.Graph, what string) {
	t.Helper()
	if got.MutSeq() != want.MutSeq() {
		t.Fatalf("%s: MutSeq %d, want %d", what, got.MutSeq(), want.MutSeq())
	}
	if !bytes.Equal(segBytes(t, got), segBytes(t, want)) {
		t.Fatalf("%s: segment bytes differ", what)
	}
}

// fillStore bootstraps and appends n batches into a fresh store at dir.
func fillStore(t testing.TB, dir string, n int) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := st.Bootstrap(bootEdges()); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, err := st.Append(batchAt(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return st
}

func TestOpenEmpty(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if st.Graph() != nil || st.Seq() != -1 {
		t.Fatalf("empty store: Graph=%v Seq=%d, want nil/-1", st.Graph(), st.Seq())
	}
	if _, err := st.Append(batchAt(0)); err == nil {
		t.Fatal("Append on empty store succeeded")
	}
	if _, err := st.BeginSnapshot(); err == nil {
		t.Fatal("BeginSnapshot on empty store succeeded")
	}
	g, err := st.Bootstrap(bootEdges())
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if g.MutSeq() != 0 || st.Seq() != 0 {
		t.Fatalf("after bootstrap: seq %d/%d, want 0", g.MutSeq(), st.Seq())
	}
	if _, err := st.Bootstrap(bootEdges()); err == nil {
		t.Fatal("second Bootstrap succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := st.Append(batchAt(0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestReopenWALOnly(t *testing.T) {
	dir := t.TempDir()
	st := fillStore(t, dir, 5)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	requireSegEqual(t, re.Graph(), refGraph(t, 5), "wal-only recovery")

	// The recovered store keeps working: more appends, then another recovery.
	if _, err := re.Append(batchAt(5)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re2, err := Open(dir)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer re2.Close()
	requireSegEqual(t, re2.Graph(), refGraph(t, 6), "recovery across generations")
}

func TestReopenSnapshotAndSuffix(t *testing.T) {
	dir := t.TempDir()
	st := fillStore(t, dir, 4)
	p, err := st.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if p.Seq() != 4 || p.Frozen().MutSeq() != 4 {
		t.Fatalf("pending seq %d/%d, want 4", p.Seq(), p.Frozen().MutSeq())
	}
	// Appends proceed against the rotated WAL while the snapshot commits.
	for i := 4; i < 9; i++ {
		if _, err := st.Append(batchAt(i)); err != nil {
			t.Fatalf("Append %d during snapshot: %v", i, err)
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	requireSegEqual(t, re.Graph(), refGraph(t, 9), "snapshot+suffix recovery")
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	st := fillStore(t, dir, 3)
	for round := 0; round < 3; round++ {
		p, err := st.BeginSnapshot()
		if err != nil {
			t.Fatalf("BeginSnapshot: %v", err)
		}
		if err := p.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		if _, err := st.Append(batchAt(3 + round)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	snaps, wals, _, err := st.scan()
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(snaps) != 1 || snaps[0] != 5 {
		t.Fatalf("snapshots after compaction: %v, want [5]", snaps)
	}
	// Every WAL whose whole record range precedes the snapshot is gone; only
	// the active one (rotated at the last snapshot) remains.
	if len(wals) != 1 || wals[0] != 5 {
		t.Fatalf("WALs after compaction: %v, want [5]", wals)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	requireSegEqual(t, re.Graph(), refGraph(t, 6), "recovery after repeated compaction")
}

func TestTruncatedWALTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	st := fillStore(t, dir, 8)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail of the only WAL holding records: chop into the last
	// frame's body.
	walFile := filepath.Join(dir, "wal--1.tkcw")
	fi, err := os.Stat(walFile)
	if err != nil {
		t.Fatalf("stat wal: %v", err)
	}
	if err := os.Truncate(walFile, fi.Size()-5); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer re.Close()
	if re.Seq() != 7 {
		t.Fatalf("recovered seq %d, want 7 (last whole batch)", re.Seq())
	}
	requireSegEqual(t, re.Graph(), refGraph(t, 7), "torn-tail prefix recovery")
}

// TestTornWALHeaderTreatedEmpty pins the mid-rotation crash shape the
// SIGKILL differential flushed out: a kill between WAL-file creation and
// the header fsync leaves the newest WAL shorter than its header. No
// record can ever have followed (rotation holds the writer lock), so the
// file must read as an empty WAL and recovery must land on the state the
// rest of the chain proves — not refuse the directory.
func TestTornWALHeaderTreatedEmpty(t *testing.T) {
	for _, keep := range []int64{0, 3, 13} {
		dir := t.TempDir()
		st := fillStore(t, dir, 5)
		if err := st.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Simulate the torn rotation: a next-generation WAL whose header
		// write never completed.
		torn := filepath.Join(dir, "wal-5.tkcw")
		hdr := []byte(walMagic)
		hdr = append(hdr, make([]byte, 8)...)
		if err := os.WriteFile(torn, hdr[:keep], 0o644); err != nil {
			t.Fatalf("write torn wal: %v", err)
		}

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("keep=%d: reopen with torn wal header: %v", keep, err)
		}
		if re.Seq() != 5 {
			t.Fatalf("keep=%d: recovered seq %d, want 5", keep, re.Seq())
		}
		requireSegEqual(t, re.Graph(), refGraph(t, 5), "torn-header recovery")
		re.Close()
	}

	// A present-but-wrong magic is corruption, not a torn create: refuse.
	dir := t.TempDir()
	st := fillStore(t, dir, 2)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	bogus := filepath.Join(dir, "wal-2.tkcw")
	if err := os.WriteFile(bogus, []byte("BOGUS!"), 0o644); err != nil {
		t.Fatalf("write bogus wal: %v", err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on a wal with a wrong magic")
	}
}

func TestCorruptSnapshotFailsOpen(t *testing.T) {
	dir := t.TempDir()
	st := fillStore(t, dir, 3)
	p, err := st.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap := filepath.Join(dir, "snapshot-3.tkcs")
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}

	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded on a bit-flipped snapshot")
	}
}

// warmStore fills a store, computes one enumeration entry and one PHC entry
// for the live sequence, and returns store, cache and the two keys.
func warmStore(t *testing.T, dir string) (*Store, *qcache.Cache, qcache.Key, qcache.Key) {
	t.Helper()
	st := fillStore(t, dir, 6)
	g := st.Graph()
	w := tgraph.Window{Start: 1, End: g.TMax()}

	ix, ecs, err := vct.Build(g, 2, w)
	if err != nil {
		t.Fatalf("vct.Build: %v", err)
	}
	hx, err := phc.Build(g, w)
	if err != nil {
		t.Fatalf("phc.Build: %v", err)
	}

	c := qcache.New(64 << 20)
	ek := qcache.Key{Seq: st.Seq(), K: 2, W: w, Algo: qcache.AlgoEnum}
	pk := qcache.Key{Seq: st.Seq(), W: w, Algo: qcache.AlgoPHC}
	c.Add(ek, qcache.NewEntry(ix, ecs, 123*time.Millisecond))
	c.Add(pk, qcache.NewPHCEntry(hx, 456*time.Millisecond))
	// An entry of a stale sequence must not be spilled.
	c.Add(qcache.Key{Seq: st.Seq() - 1, K: 2, W: w, Algo: qcache.AlgoEnum},
		qcache.NewEntry(ix, ecs, time.Millisecond))
	return st, c, ek, pk
}

func TestWarmSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, c, ek, pk := warmStore(t, dir)
	origIx, _ := c.Probe(ek)
	origPhc, _ := c.Probe(pk)

	p, err := st.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	n, err := p.WriteWarm(c)
	if err != nil {
		t.Fatalf("WriteWarm: %v", err)
	}
	if n != 2 {
		t.Fatalf("WriteWarm spilled %d entries, want 2 (stale seq skipped)", n)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	fresh := qcache.New(64 << 20)
	var oracle *phc.Index
	admitted, err := re.LoadWarm(fresh, func(ix *phc.Index) { oracle = ix })
	if err != nil {
		t.Fatalf("LoadWarm: %v", err)
	}
	if admitted != 2 {
		t.Fatalf("LoadWarm admitted %d, want 2", admitted)
	}

	ent, ok := fresh.Probe(ek)
	if !ok {
		t.Fatal("enumeration entry missing after warm load")
	}
	if ent.CoreTime != 123*time.Millisecond {
		t.Fatalf("enum CoreTime %v, want 123ms", ent.CoreTime)
	}
	var a, b bytes.Buffer
	if err := origIx.Ix.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := ent.Ix.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-loaded index bytes differ from the spilled ones")
	}

	pent, ok := fresh.Probe(pk)
	if !ok {
		t.Fatal("PHC entry missing after warm load")
	}
	if oracle == nil || oracle != pent.Phc {
		t.Fatal("onPHC did not deliver the admitted PHC index")
	}
	if !pent.Phc.Fp.Matches(re.Graph()) {
		t.Fatal("admitted PHC entry does not fingerprint-match the recovered graph")
	}
	a.Reset()
	b.Reset()
	if err := origPhc.Phc.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := pent.Phc.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("warm-loaded PHC bytes differ from the spilled ones")
	}
}

func TestWarmStaleAfterFurtherAppends(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := warmStore(t, dir)
	p, err := st.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if _, err := p.WriteWarm(c); err != nil {
		t.Fatalf("WriteWarm: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// The graph moves past the spilled sequence before shutdown.
	if _, err := st.Append(batchAt(6)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	fresh := qcache.New(64 << 20)
	admitted, err := re.LoadWarm(fresh, nil)
	if err != nil || admitted != 0 {
		t.Fatalf("stale warm spill: admitted=%d err=%v, want 0/nil", admitted, err)
	}
}

func TestWarmFingerprintMismatchSkipped(t *testing.T) {
	dirA := t.TempDir()
	stA, c, _, _ := warmStore(t, dirA)
	p, err := stA.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if _, err := p.WriteWarm(c); err != nil {
		t.Fatalf("WriteWarm: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	seq := stA.Seq()
	if err := stA.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A different store, steered to the same sequence number but different
	// contents (extra vertices, different edges).
	dirB := t.TempDir()
	stB, err := Open(dirB)
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	var boot []tgraph.RawEdge
	for i := int64(0); i < 40; i++ {
		boot = append(boot, tgraph.RawEdge{U: i, V: (i + 5) % 40, Time: 1})
	}
	if _, err := stB.Bootstrap(boot); err != nil {
		t.Fatalf("Bootstrap B: %v", err)
	}
	for i := int64(0); stB.Seq() < seq; i++ {
		if _, err := stB.Append([]tgraph.RawEdge{{U: i % 40, V: (i + 7) % 40, Time: 2 + i}}); err != nil {
			t.Fatalf("Append B: %v", err)
		}
	}
	pb, err := stB.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot B: %v", err)
	}
	if err := pb.Commit(); err != nil {
		t.Fatalf("Commit B: %v", err)
	}
	if err := stB.Close(); err != nil {
		t.Fatalf("Close B: %v", err)
	}

	// Graft A's warm spill into B's directory: same sequence, wrong state.
	raw, err := os.ReadFile(filepath.Join(dirA, warmName(seq)))
	if err != nil {
		t.Fatalf("read warm A: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dirB, warmName(seq)), raw, 0o644); err != nil {
		t.Fatalf("write warm into B: %v", err)
	}

	re, err := Open(dirB)
	if err != nil {
		t.Fatalf("reopen B: %v", err)
	}
	defer re.Close()
	fresh := qcache.New(64 << 20)
	phcCalls := 0
	admitted, err := re.LoadWarm(fresh, func(*phc.Index) { phcCalls++ })
	if err != nil {
		t.Fatalf("LoadWarm: %v", err)
	}
	if admitted != 0 || phcCalls != 0 {
		t.Fatalf("foreign warm spill: admitted=%d phcCalls=%d, want 0/0", admitted, phcCalls)
	}
	if st := fresh.Stats(); st.Entries != 0 {
		t.Fatalf("foreign warm spill populated the cache: %d entries", st.Entries)
	}
}

func TestWarmCorruptFileAdmitsNothing(t *testing.T) {
	dir := t.TempDir()
	st, c, _, _ := warmStore(t, dir)
	p, err := st.BeginSnapshot()
	if err != nil {
		t.Fatalf("BeginSnapshot: %v", err)
	}
	if _, err := p.WriteWarm(c); err != nil {
		t.Fatalf("WriteWarm: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	seq := st.Seq()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	warm := filepath.Join(dir, warmName(seq))
	raw, err := os.ReadFile(warm)
	if err != nil {
		t.Fatalf("read warm: %v", err)
	}
	// Flip a bit inside the first frame's payload: its CRC fails and the
	// load stops there, admitting nothing — and reporting no error.
	raw[len(warmMagic)+8+8+10] ^= 0x01
	if err := os.WriteFile(warm, raw, 0o644); err != nil {
		t.Fatalf("write warm: %v", err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	fresh := qcache.New(64 << 20)
	admitted, err := re.LoadWarm(fresh, nil)
	if err != nil || admitted != 0 {
		t.Fatalf("corrupt warm spill: admitted=%d err=%v, want 0/nil", admitted, err)
	}
}

func warmName(seq int64) string {
	return filepath.Base((&Store{dir: "."}).warmPath(seq))
}
