package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"temporalkcore/internal/tgraph"
)

// Sharded durability rides on the same data directory: the spine graph
// recovers through the usual snapshot + WAL chain (the only path proven
// byte-identical), while the shard partition persists as
//
//	shard-<id>-<seq>.tkcs  standalone segment image of sealed shard <id>
//	shards.json            the manifest of sealed cuts, rewritten per seal
//
// A sealed shard's range is immutable, so its segment file is written
// exactly once — SyncShards never rewrites an existing file — and the
// whole shard tier is exempt from snapshot compaction (compact only
// touches snapshot-/wal-/warm- files). Each shard file is a complete
// TKSG1 image of just that shard's edges, openable on its own with
// ReadShard: a sealed shard can be shipped, archived or served elsewhere
// without the rest of the history.

// ShardCut is the durable record of one sealed shard boundary, mirroring
// the in-memory directory cut.
type ShardCut struct {
	ID     int   `json:"id"`      // 0-based shard id
	RawEnd int64 `json:"raw_end"` // inclusive raw-time upper bound
	End    int64 `json:"end"`     // compressed rank of RawEnd at seal time
	Seq    int64 `json:"seq"`     // spine mutation sequence at seal time
}

func (s *Store) shardPath(id int, seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%d-%d.tkcs", id, seq))
}

func (s *Store) manifestPath() string {
	return filepath.Join(s.dir, "shards.json")
}

// SyncShards makes the sealed-shard tier durable for the given cut list
// (ascending, cuts[i].ID == i): every cut whose standalone segment image
// is missing gets one written atomically, then the manifest is rewritten.
// Existing shard files are never touched — sealed ranges are immutable,
// so a re-seal of the same cut is a no-op. Writer-side, like Append.
func (s *Store) SyncShards(cuts []ShardCut) error {
	if s.g == nil {
		return fmt.Errorf("store: empty store: nothing to shard")
	}
	start := tgraph.TS(1)
	for _, c := range cuts {
		end := tgraph.TS(c.End)
		path := s.shardPath(c.ID, c.Seq)
		if _, err := os.Stat(path); err == nil {
			start = end + 1
			continue // sealed shards snapshot exactly once
		}
		slice, err := s.g.SliceWindow(tgraph.Window{Start: start, End: end})
		if err != nil {
			return fmt.Errorf("store: slicing shard %d [%d,%d]: %w", c.ID, start, end, err)
		}
		if err := writeFileAtomic(path, func(f *os.File) error { return slice.WriteSegments(f) }); err != nil {
			return fmt.Errorf("store: writing shard %d: %w", c.ID, err)
		}
		start = end + 1
	}
	data, err := json.MarshalIndent(cuts, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding shard manifest: %w", err)
	}
	if err := writeFileAtomic(s.manifestPath(), func(f *os.File) error {
		_, werr := f.Write(append(data, '\n'))
		return werr
	}); err != nil {
		return fmt.Errorf("store: writing shard manifest: %w", err)
	}
	return nil
}

// ShardManifest loads the sealed-cut manifest, nil (no error) when the
// directory has no shard tier.
func (s *Store) ShardManifest() ([]ShardCut, error) {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var cuts []ShardCut
	if err := json.Unmarshal(data, &cuts); err != nil {
		return nil, fmt.Errorf("store: shard manifest: %w", err)
	}
	for i, c := range cuts {
		if c.ID != i {
			return nil, fmt.Errorf("store: shard manifest: cut %d has id %d", i, c.ID)
		}
		if i > 0 && (c.RawEnd <= cuts[i-1].RawEnd || c.End <= cuts[i-1].End) {
			return nil, fmt.Errorf("store: shard manifest: cuts not ascending at %d", i)
		}
	}
	return cuts, nil
}

// ReadShard opens one sealed shard's standalone segment image.
func (s *Store) ReadShard(id int, seq int64) (*tgraph.Graph, error) {
	f, err := os.Open(s.shardPath(id, seq))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	g, err := tgraph.ReadSegments(f)
	if err != nil {
		return nil, fmt.Errorf("store: shard %d: %w", id, err)
	}
	return g, nil
}
