package temporalkcore_test

import (
	"errors"
	"io"
	"testing"

	tkc "temporalkcore"
)

// errGraph builds a small graph whose timestamps live in [10, 14], so
// [100, 200] is a well-formed range that misses every timestamp and
// (7, 1) is inverted.
func errGraph(t *testing.T) *tkc.Graph {
	t.Helper()
	g, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
		{U: 3, V: 4, Time: 13}, {U: 1, V: 4, Time: 14},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRangeErrorContract locks the uniform error contract of every public
// entry point that takes a raw (start, end) range: start > end yields
// ErrEmptyRange, a well-formed range covering no timestamp yields
// ErrNoTimestamps — never a silent empty result, never the other sentinel.
func TestRangeErrorContract(t *testing.T) {
	g := errGraph(t)
	entryPoints := []struct {
		name string
		call func(start, end int64) error
	}{
		{"Cores", func(s, e int64) error { _, err := g.Cores(2, s, e); return err }},
		{"CoresFunc", func(s, e int64) error {
			_, err := g.CoresFunc(2, s, e, func(tkc.Core) bool { return true })
			return err
		}},
		{"CountCores", func(s, e int64) error { _, err := g.CountCores(2, s, e); return err }},
		{"WriteCores", func(s, e int64) error { _, err := g.WriteCores(io.Discard, 2, s, e); return err }},
		{"QueryBatch", func(s, e int64) error {
			res := g.QueryBatch([]tkc.QuerySpec{{K: 2, Start: s, End: e}})
			return res[0].Err
		}},
		{"CountBatch", func(s, e int64) error {
			res := g.CountBatch([]tkc.QuerySpec{{K: 2, Start: s, End: e}}, 1)
			return res[0].Err
		}},
		{"Prepare", func(s, e int64) error { _, err := g.Prepare(2, s, e); return err }},
		{"CoreTimes", func(s, e int64) error { _, err := g.CoreTimes(1, 2, s, e); return err }},
		{"VertexSets", func(s, e int64) error { _, err := g.VertexSets(2, s, e); return err }},
		{"KHCore", func(s, e int64) error { _, err := g.KHCore(2, 1, s, e); return err }},
		{"KHCoreEdges", func(s, e int64) error { _, err := g.KHCoreEdges(2, 1, s, e); return err }},
		{"BuildHistoricalIndex", func(s, e int64) error { _, err := g.BuildHistoricalIndex(s, e); return err }},
	}
	cases := []struct {
		name       string
		start, end int64
		want       error
	}{
		{"inverted", 14, 10, tkc.ErrEmptyRange},
		{"inverted single", 11, 10, tkc.ErrEmptyRange},
		{"misses all timestamps", 100, 200, tkc.ErrNoTimestamps},
		{"before all timestamps", -50, 5, tkc.ErrNoTimestamps},
		{"valid", 10, 14, nil},
	}
	for _, ep := range entryPoints {
		for _, c := range cases {
			err := ep.call(c.start, c.end)
			if c.want == nil {
				if err != nil {
					t.Errorf("%s(%d, %d) = %v, want nil", ep.name, c.start, c.end, err)
				}
				continue
			}
			if !errors.Is(err, c.want) {
				t.Errorf("%s(%d, %d) = %v, want %v", ep.name, c.start, c.end, err, c.want)
			}
		}
	}
}

// TestHistoricalIndexRangeContract covers the query methods of a built
// HistoricalIndex, which resolve ranges against the indexed window.
func TestHistoricalIndexRangeContract(t *testing.T) {
	g := errGraph(t)
	h, err := g.BuildHistoricalIndex(10, 14)
	if err != nil {
		t.Fatal(err)
	}
	calls := []struct {
		name string
		call func(start, end int64) error
	}{
		{"Contains", func(s, e int64) error { _, err := h.Contains(1, 2, s, e); return err }},
		{"CoreMembers", func(s, e int64) error { _, err := h.CoreMembers(2, s, e); return err }},
		{"CoreEdges", func(s, e int64) error { _, err := h.CoreEdges(2, s, e); return err }},
		{"CoreNumber", func(s, e int64) error { _, err := h.CoreNumber(1, s, e); return err }},
	}
	for _, c := range calls {
		if err := c.call(14, 10); !errors.Is(err, tkc.ErrEmptyRange) {
			t.Errorf("%s inverted = %v, want ErrEmptyRange", c.name, err)
		}
		if err := c.call(100, 200); !errors.Is(err, tkc.ErrNoTimestamps) {
			t.Errorf("%s miss = %v, want ErrNoTimestamps", c.name, err)
		}
		if err := c.call(10, 14); err != nil {
			t.Errorf("%s valid = %v, want nil", c.name, err)
		}
	}
}

// TestKValidationContract locks the k (and h) parameter validation of the
// query entry points.
func TestKValidationContract(t *testing.T) {
	g := errGraph(t)
	for name, call := range map[string]func() error{
		"Cores":      func() error { _, err := g.Cores(0, 10, 14); return err },
		"CountCores": func() error { _, err := g.CountCores(-1, 10, 14); return err },
		"Prepare":    func() error { _, err := g.Prepare(0, 10, 14); return err },
		"QueryBatch": func() error { return g.QueryBatch([]tkc.QuerySpec{{K: 0, Start: 10, End: 14}})[0].Err },
		"KHCore k":   func() error { _, err := g.KHCore(0, 1, 10, 14); return err },
		"KHCore h":   func() error { _, err := g.KHCore(1, 0, 10, 14); return err },
		"Watch":      func() error { _, err := g.Watch(0, 0); return err },
	} {
		err := call()
		if err == nil {
			t.Errorf("%s accepted invalid k", name)
			continue
		}
		if errors.Is(err, tkc.ErrEmptyRange) || errors.Is(err, tkc.ErrNoTimestamps) {
			t.Errorf("%s returned a range sentinel for bad k: %v", name, err)
		}
	}
}
