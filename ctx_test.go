package temporalkcore_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	tkc "temporalkcore"
)

// bigGraph builds a graph whose full-range queries take long enough
// (hundreds of ms on any hardware this runs on) that mid-flight
// cancellation is observable; at k=3 the CoreTime phase dominates the
// runtime (~85%), so an early cancellation lands inside the settle loop.
func bigGraph(t testing.TB) *tkc.Graph {
	t.Helper()
	return reqGraph(t, 99, 900, 8000)
}

// TestCancelPreCancelled: an already-cancelled context returns ctx.Err()
// from every execution mode without doing any work.
func TestCancelPreCancelled(t *testing.T) {
	g := reqGraph(t, 10, 30, 300)
	lo, hi := g.TimeSpan()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := g.Query(2).Collect(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Collect = %v, want context.Canceled", err)
	}
	if _, err := g.Query(2).Count(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Count = %v, want context.Canceled", err)
	}
	p, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Query().Collect(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("prepared Collect = %v, want context.Canceled", err)
	}
	w, err := g.Watch(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Query().Collect(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("watcher Collect = %v, want context.Canceled", err)
	}
	if _, _, err := g.Query(2).Snapshot(1).First(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("snapshot First = %v, want context.Canceled", err)
	}
	h, err := g.BuildHistoricalIndex(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.Query(2).First(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("historical First = %v, want context.Canceled", err)
	}

	// Seq yields exactly one element carrying the error.
	n := 0
	for _, err := range g.Query(2).Seq(ctx) {
		n++
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Seq err = %v, want context.Canceled", err)
		}
	}
	if n != 1 {
		t.Errorf("Seq yielded %d elements, want 1", n)
	}
}

// TestPrepareContextCancel: PrepareContext returns ctx.Err() for an
// already-cancelled context without building anything, accepts nil ctx as
// context.Background, and produces a handle equivalent to Prepare's when
// the context stays live.
func TestPrepareContextCancel(t *testing.T) {
	g := reqGraph(t, 10, 30, 300)
	lo, hi := g.TimeSpan()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.PrepareContext(ctx, 2, lo, hi); !errors.Is(err, context.Canceled) {
		t.Errorf("PrepareContext(cancelled) = %v, want context.Canceled", err)
	}

	p, err := g.PrepareContext(nil, 2, lo, hi)
	if err != nil {
		t.Fatalf("PrepareContext(nil ctx) = %v", err)
	}
	want, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if p.VCTSize() != want.VCTSize() || p.ECSSize() != want.ECSSize() {
		t.Errorf("PrepareContext tables differ from Prepare: VCT %d/%d, ECS %d/%d",
			p.VCTSize(), want.VCTSize(), p.ECSSize(), want.ECSSize())
	}
}

// TestCancelMidCoreTime cancels a deliberately huge query while its
// CoreTime phase is settling and requires a prompt ctx.Err() return,
// bounded by the poll stride rather than the query size.
func TestCancelMidCoreTime(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := bigGraph(t)

	// Reference: the uncancelled query, also the warm-up for scratch pools.
	began := time.Now()
	full, err := g.Query(3).Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(began)
	if fullDur < 20*time.Millisecond {
		t.Skipf("full query too fast to observe cancellation (%v)", fullDur)
	}

	// Cancel at ~5% of the full duration: the query is then still deep in
	// the CoreTime phase (it dominates the runtime here).
	ctx, cancel := context.WithTimeout(context.Background(), fullDur/20)
	defer cancel()
	began = time.Now()
	_, err = g.Query(3).Count(ctx)
	elapsed := time.Since(began)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled query returned %v (in %v), want context.DeadlineExceeded", err, elapsed)
	}
	if elapsed > fullDur/2 {
		t.Errorf("cancelled query took %v of a %v query; cancellation is not prompt", elapsed, fullDur)
	}
	_ = full
}

// TestCancelMidEnumeration cancels from inside the result loop after the
// first core: the engine must stop at its next poll and surface ctx.Err()
// as the final stream element.
func TestCancelMidEnumeration(t *testing.T) {
	g := reqGraph(t, 11, 60, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var cores, errs int
	var lastErr error
	for _, err := range g.Query(2).Seq(ctx) {
		if err != nil {
			errs++
			lastErr = err
			continue
		}
		cores++
		cancel() // cancel mid-enumeration, keep ranging
	}
	if errs != 1 || !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("stream after mid-enumeration cancel: %d cores, %d errs, last %v", cores, errs, lastErr)
	}
	// The enumeration polls every stride start times, so a handful of
	// cores may still arrive after the cancel — but not the full result.
	total, err := g.Query(2).Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if int64(cores) >= total.Cores {
		t.Errorf("cancel did not stop the enumeration: %d of %d cores emitted", cores, total.Cores)
	}
}

// TestCancelBatchPartial cancels a batch mid-flight: finished items keep
// results, unfinished ones report Cancelled with ctx.Err(), and at least
// one item must have been cut (partial delivery, not all-or-nothing).
func TestCancelBatchPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := bigGraph(t)
	lo, hi := g.TimeSpan()

	reqs := make([]*tkc.Request, 8)
	for i := range reqs {
		reqs[i] = g.Query(2).Window(lo, hi).Project(tkc.ProjectCount)
	}
	// Time one query to place the cancellation inside the batch run.
	began := time.Now()
	if _, err := reqs[0].Count(context.Background()); err != nil {
		t.Fatal(err)
	}
	one := time.Since(began)

	ctx, cancel := context.WithTimeout(context.Background(), one+one/2)
	defer cancel()
	res := g.RunBatch(ctx, reqs, tkc.BatchOptions{Parallelism: 1})

	var done, cut int
	for i, r := range res {
		switch {
		case r.Err == nil:
			done++
		case r.Cancelled:
			cut++
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Errorf("item %d: cancelled with err %v", i, r.Err)
			}
		default:
			t.Errorf("item %d: unexpected error %v", i, r.Err)
		}
	}
	if done == 0 {
		t.Error("no batch item completed before the deadline")
	}
	if cut == 0 {
		t.Error("no batch item was cancelled; cancellation did not interrupt the batch")
	}
}

// TestCancelAllocSteady: repeatedly cancelled queries must not leak
// scratch state — the allocation count per cancelled run stays small and
// constant, proving pooled arenas are returned on the cancellation path.
func TestCancelAllocSteady(t *testing.T) {
	g := reqGraph(t, 12, 60, 2000)

	// Warm the pools.
	if _, err := g.Query(2).Count(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	preAllocs := testing.AllocsPerRun(50, func() {
		if _, err := g.Query(2).Count(cancelled); err == nil {
			t.Fatal("cancelled query succeeded")
		}
	})
	if preAllocs > 20 {
		t.Errorf("pre-cancelled query allocates %.0f per run; scratch reuse broken", preAllocs)
	}

	midAllocs := testing.AllocsPerRun(50, func() {
		ctx, cancelMid := context.WithCancel(context.Background())
		first := true
		for _, err := range g.Query(2).Project(tkc.ProjectCount).Seq(ctx) {
			if err == nil && first {
				first = false
				cancelMid()
			}
		}
		cancelMid()
	})
	if midAllocs > 200 {
		t.Errorf("mid-enumeration cancelled query allocates %.0f per run; scratch leaks on the cancel path", midAllocs)
	}
}

// TestCancelMidPatchRefresh cancels a watcher query whose stale view
// forces an incremental patch refresh (the dyn.Index.Refresh path): the
// cancellation must land inside vct.PatchScratchStop's settle loop and
// surface promptly as ctx.Err(), the watcher must stay serviceable, and
// an uncancelled retry must agree with a one-shot query.
func TestCancelMidPatchRefresh(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// Two identical graph+watcher pairs: one times the uncancelled repair,
	// the other is cancelled mid-patch.
	mk := func() (*tkc.Graph, *tkc.Watcher, []tkc.Edge) {
		g := reqGraph(t, 99, 900, 8000)
		w, err := g.Watch(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A large time-ordered batch: the dirty suffix the repair patch
		// must re-settle.
		_, hi := g.TimeSpan()
		r := rand.New(rand.NewSource(17))
		batch := make([]tkc.Edge, 0, 6000)
		tme := hi
		for len(batch) < cap(batch) {
			u, v := int64(r.Intn(900)), int64(r.Intn(900))
			if u == v {
				continue
			}
			if r.Intn(3) == 0 {
				tme++
			}
			batch = append(batch, tkc.Edge{U: u, V: v, Time: tme})
		}
		return g, w, batch
	}

	gRef, wRef, batch := mk()
	if _, err := gRef.Append(batch...); err != nil { // direct append: watcher view now stale
		t.Fatal(err)
	}
	began := time.Now()
	if _, err := wRef.Query().Count(context.Background()); err != nil {
		t.Fatal(err)
	}
	repairDur := time.Since(began)
	if repairDur < 20*time.Millisecond {
		t.Skipf("repair too fast to observe cancellation (%v)", repairDur)
	}
	st := wRef.Stats()
	if st.Patches == 0 {
		t.Fatalf("reference repair did not use the patch path (stats %+v)", st)
	}

	gCut, wCut, batch2 := mk()
	if _, err := gCut.Append(batch2...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), repairDur/20)
	defer cancel()
	began = time.Now()
	_, err := wCut.Query().Count(ctx)
	elapsed := time.Since(began)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled mid-patch query returned %v (in %v), want context.DeadlineExceeded", err, elapsed)
	}
	if elapsed > repairDur/2 {
		t.Errorf("cancelled repair took %v of a %v repair; mid-patch cancellation is not prompt", elapsed, repairDur)
	}

	// The watcher survives the cancelled repair and converges on retry.
	got, err := wCut.Query().Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := gCut.TimeSpan()
	want, err := gCut.Query(3).Window(lo, hi).Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != want.Cores || got.Edges != want.Edges {
		t.Fatalf("post-cancel watcher cores=%d |R|=%d, one-shot cores=%d |R|=%d", got.Cores, got.Edges, want.Cores, want.Edges)
	}
}

// TestCancelMidHistoricalBuild cancels Graph.HistoricalIndex while its
// per-k settle loops run and requires a prompt ctx.Err() return; the
// cancelled build must leave the serving cache and patch oracle clean, so
// an uncancelled retry succeeds. Two identical graphs are used because a
// repeat call on the first would be a warm cache hit, not a build.
func TestCancelMidHistoricalBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gRef := bigGraph(t)
	lo, hi := gRef.TimeSpan()
	began := time.Now()
	if _, err := gRef.HistoricalIndex(context.Background(), lo, hi); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(began)
	if fullDur < 20*time.Millisecond {
		t.Skipf("full build too fast to observe cancellation (%v)", fullDur)
	}

	gCut := bigGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), fullDur/20)
	defer cancel()
	began = time.Now()
	_, err := gCut.HistoricalIndex(ctx, lo, hi)
	elapsed := time.Since(began)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled build returned %v (in %v), want context.DeadlineExceeded", err, elapsed)
	}
	if elapsed > fullDur/2 {
		t.Errorf("cancelled build took %v of a %v build; cancellation is not prompt", elapsed, fullDur)
	}

	h, err := gCut.HistoricalIndex(context.Background(), lo, hi)
	if err != nil {
		t.Fatalf("retry after cancelled build: %v", err)
	}
	if h.KMax() < 1 {
		t.Errorf("retry produced an empty index (KMax %d)", h.KMax())
	}
}
