package temporalkcore_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	tkc "temporalkcore"
)

func TestShardedDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	edges := randomEdges(77, 14, 1000, 50)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	base, rest := edges[:400], edges[400:]

	sg, err := tkc.BootstrapShardedDir(dir, base, tkc.ShardOptions{Shards: 3, MaxShardEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tkc.BootstrapShardedDir(dir, base, tkc.ShardOptions{}); err == nil {
		t.Fatal("second bootstrap of the same directory accepted")
	}
	for i := 0; i < len(rest); i += 150 {
		j := i + 150
		if j > len(rest) {
			j = len(rest)
		}
		if _, err := sg.Append(rest[i:j]...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sg.Seal(); err != nil {
		t.Fatal(err)
	}
	sealedShards := sg.NumShards()
	if sealedShards < 3 {
		t.Fatalf("expected initial partition + auto-seals, got %d shards", sealedShards)
	}

	// Every sealed shard has exactly one on-disk segment image; record
	// their mtimes to prove later seals never rewrite them.
	shardFiles, _ := filepath.Glob(filepath.Join(dir, "shard-*.tkcs"))
	if len(shardFiles) != sealedShards-1 {
		t.Fatalf("%d shard segment files for %d sealed shards", len(shardFiles), sealedShards-1)
	}
	mtimes := map[string]int64{}
	for _, f := range shardFiles {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		mtimes[f] = fi.ModTime().UnixNano()
	}

	lo, hi := sg.Spine().TimeSpan()
	want, err := sg.Latest().Query(2).Window(lo, hi).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantSeq := sg.Latest().Seq()

	// A spine snapshot compacts the WAL chain but must leave the shard
	// tier untouched.
	if _, err := sg.SnapshotDurable(); err != nil {
		t.Fatal(err)
	}
	for f, mt := range mtimes {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("shard segment %s gone after snapshot compaction: %v", f, err)
		}
		if fi.ModTime().UnixNano() != mt {
			t.Fatalf("shard segment %s was rewritten", f)
		}
	}
	if err := sg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sg.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	// Reopen: the spine recovers byte-identically, the directory comes
	// back from the manifest, and the sharded results are unchanged.
	re, err := tkc.OpenShardedDir(dir, tkc.ShardOptions{MaxShardEdges: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != sealedShards {
		t.Fatalf("reopened with %d shards, sealed %d", re.NumShards(), sealedShards)
	}
	if re.Latest().Seq() != wantSeq {
		t.Fatalf("recovered seq %d, want %d", re.Latest().Seq(), wantSeq)
	}
	got, err := re.Latest().Query(2).Window(lo, hi).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded results changed across restart")
	}
	shardedMustMatch(t, re.Latest(), 2, lo, hi)

	// And the reopened graph keeps appending + sealing durably.
	last := edges[len(edges)-1].Time
	batch := []tkc.Edge{{U: 1, V: 2, Time: last + 1}, {U: 2, V: 3, Time: last + 2}}
	if _, err := re.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if _, err := re.Seal(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenShardedDirRejectsForeignManifest(t *testing.T) {
	dir := t.TempDir()
	sg, err := tkc.BootstrapShardedDir(dir, randomEdges(9, 10, 300, 20), tkc.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.Close(); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "shards.json")
	if err := os.WriteFile(manifest, []byte(`[{"id":0,"raw_end":999999,"end":2,"seq":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tkc.OpenShardedDir(dir, tkc.ShardOptions{}); err == nil {
		t.Fatal("manifest pointing at a different history was accepted")
	}
}

func TestOpenShardedDirEmpty(t *testing.T) {
	if _, err := tkc.OpenShardedDir(t.TempDir(), tkc.ShardOptions{}); err == nil {
		t.Fatal("empty directory accepted")
	}
}
