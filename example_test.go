package temporalkcore_test

import (
	"fmt"

	tkc "temporalkcore"
)

// The graph of the paper's Figure 1, queried for the temporal 2-cores of
// the range [1, 4] (the paper's Figure 2).
func ExampleGraph_Cores() {
	g, _ := tkc.NewGraph([]tkc.Edge{
		{U: 2, V: 9, Time: 1}, {U: 1, V: 4, Time: 2}, {U: 2, V: 3, Time: 2},
		{U: 1, V: 2, Time: 3}, {U: 2, V: 4, Time: 3}, {U: 3, V: 9, Time: 4},
		{U: 4, V: 8, Time: 4}, {U: 1, V: 6, Time: 5}, {U: 1, V: 7, Time: 5},
		{U: 2, V: 8, Time: 5}, {U: 6, V: 7, Time: 5}, {U: 1, V: 3, Time: 6},
		{U: 3, V: 5, Time: 6}, {U: 1, V: 5, Time: 7},
	})
	cores, _ := g.Cores(2, 1, 4)
	for _, c := range cores {
		fmt.Printf("TTI=[%d,%d] %d edges\n", c.Start, c.End, len(c.Edges))
	}
	// Output:
	// TTI=[1,4] 6 edges
	// TTI=[2,3] 3 edges
}

// Streaming enumeration with early stop.
func ExampleGraph_CoresFunc() {
	g, _ := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 2, V: 3, Time: 2}, {U: 1, V: 3, Time: 3},
		{U: 3, V: 4, Time: 4}, {U: 4, V: 5, Time: 5}, {U: 3, V: 5, Time: 6},
		{U: 4, V: 5, Time: 7},
	})
	n := 0
	stats, _ := g.CoresFunc(2, 1, 7, func(c tkc.Core) bool {
		n++
		return n < 2 // stop after two results
	})
	fmt.Println("visited:", stats.Cores)
	// Output:
	// visited: 2
}

// A vertex's core-time index: from each start time, the earliest window
// end at which the vertex joins a 2-core.
func ExampleGraph_CoreTimes() {
	g, _ := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 2, V: 3, Time: 2}, {U: 1, V: 3, Time: 3},
	})
	ents, _ := g.CoreTimes(1, 2, 1, 3)
	for _, e := range ents {
		if e.Infinite {
			fmt.Printf("from %d: never\n", e.Start)
		} else {
			fmt.Printf("from %d: core by %d\n", e.Start, e.CoreTime)
		}
	}
	// Output:
	// from 1: core by 3
	// from 2: never
}

// Preparing a query once and reusing the core-time phase.
func ExampleGraph_Prepare() {
	g, _ := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 2, V: 3, Time: 2}, {U: 1, V: 3, Time: 3},
	})
	p, _ := g.Prepare(2, 1, 3)
	stats, _ := p.Count()
	fmt.Printf("cores=%d |VCT|=%d |ECS|=%d\n", stats.Cores, p.VCTSize(), p.ECSSize())
	// Output:
	// cores=1 |VCT|=6 |ECS|=3
}
