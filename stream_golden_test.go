package temporalkcore_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	tkc "temporalkcore"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden NDJSON files")

// goldenCases are deterministic graphs and queries whose WriteCores output
// is locked byte for byte: the NDJSON schema ({"start","end","edges":[[u,v,t],...]},
// one object per line, emission order) is a wire format downstream
// consumers parse, so accidental changes must fail loudly.
var goldenCases = []struct {
	name  string
	edges []tkc.Edge
	k     int
	start int64
	end   int64
}{
	{
		name: "triangle_growing",
		edges: []tkc.Edge{
			{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
			{U: 3, V: 4, Time: 13}, {U: 1, V: 4, Time: 13}, {U: 2, V: 4, Time: 14},
		},
		k: 2, start: 10, end: 14,
	},
	{
		name: "two_bursts",
		edges: []tkc.Edge{
			{U: 10, V: 20, Time: 1}, {U: 20, V: 30, Time: 1}, {U: 10, V: 30, Time: 2},
			{U: 40, V: 50, Time: 5}, {U: 50, V: 60, Time: 5}, {U: 40, V: 60, Time: 5},
			{U: 10, V: 40, Time: 6}, {U: 20, V: 50, Time: 6}, {U: 10, V: 20, Time: 7},
			{U: 10, V: 30, Time: 7}, {U: 20, V: 30, Time: 7},
		},
		k: 2, start: 1, end: 7,
	},
	{
		name: "no_cores",
		edges: []tkc.Edge{
			{U: 1, V: 2, Time: 1}, {U: 3, V: 4, Time: 2}, {U: 5, V: 6, Time: 3},
		},
		k: 2, start: 1, end: 3,
	},
}

func TestWriteCoresGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tkc.NewGraph(tc.edges)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if _, err := g.WriteCores(&buf, tc.k, tc.start, tc.end); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", tc.name+".ndjson")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("WriteCores NDJSON output changed for %s.\nThis is a locked wire format; if the change is intentional, regenerate with `go test -run TestWriteCoresGolden -update`.\n--- got ---\n%s--- want ---\n%s",
					tc.name, buf.Bytes(), want)
			}

			// The format must round-trip through ReadCores.
			var back []tkc.Core
			if err := tkc.ReadCores(bytes.NewReader(buf.Bytes()), func(c tkc.Core) bool {
				back = append(back, c)
				return true
			}); err != nil {
				t.Fatalf("ReadCores on golden output: %v", err)
			}
			cores, err := g.Cores(tc.k, tc.start, tc.end)
			if err != nil {
				t.Fatal(err)
			}
			if coreSetString(back) != coreSetString(cores) {
				t.Error("ReadCores round-trip lost information")
			}
		})
	}
}
