package temporalkcore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"temporalkcore/internal/shard"
	"temporalkcore/internal/tgraph"
)

// ShardOptions configures a ShardedGraph.
type ShardOptions struct {
	// Shards is the initial partition count: the existing history is cut
	// into this many contiguous time-range shards (edge-count quantiles),
	// the last of which is the open frontier. <= 1 starts with a single
	// frontier shard and lets sealing grow the set.
	Shards int

	// MaxShardEdges, when > 0, seals the frontier automatically once it
	// holds at least this many edges (checked after each Append). 0 means
	// sealing is manual (Seal).
	MaxShardEdges int

	// Replicas is the number of reader goroutines serving each shard's
	// span tasks, each with its own private scratch. <= 0 means 2.
	Replicas int
}

// DefaultShardReplicas is the per-shard replica count when
// ShardOptions.Replicas is unset.
const DefaultShardReplicas = 2

// ShardedGraph partitions one temporal graph's time axis into contiguous
// time-range shards behind the same Query API: window queries scatter to
// exactly the shards whose range overlaps the request, run on per-shard
// replica pools, and gather into one stream that is byte-identical to the
// unsharded enumeration of the same window (see internal/shard for the
// decomposition argument).
//
// The append-only frontier keeps the partition trivially consistent: only
// the newest shard accepts appends, and Seal freezes it at a cut one rank
// below the current maximum timestamp — a range no later Append can touch
// — then opens a new frontier above it. Sealed shards are immutable, so
// their per-k CoreTime tables cache under seal-scoped keys that survive
// epoch retirement, and queries crossing a cut stitch the cached tables
// across the boundary with an incremental re-settle instead of
// recomputing the shard's interior.
//
// A ShardedGraph is single-writer (Append/Seal/Close from one goroutine
// or externally serialised); reads — Latest, Query, stats — are safe from
// any goroutine, any number concurrently.
type ShardedGraph struct {
	opts ShardOptions

	spine *Graph // the whole history; single-writer
	rt    *shard.Runtime
	view  atomic.Pointer[ShardedView]

	// Readers never touch dir directly — they use the published view.
	// st is nil without durability.
	mu  sync.Mutex       // writer lock: Append, Seal, Close
	dir *shard.Directory // tkc:guardedby mu
	st  *shardStore      // tkc:guardedby mu

	closed atomic.Bool
}

// ShardedView is one published epoch of a sharded graph paired with the
// shard directory that was current when it was published: a query planned
// on a view scatters by that directory and reads that epoch, so concurrent
// appends and seals never shift the data (or the routing) under a running
// query.
//
// tkc:frozensource
type ShardedView struct {
	sg   *ShardedGraph
	snap *Snapshot
	dir  *shard.Directory
}

// NewSharded builds a sharded graph from an edge list; see ShardGraph for
// the partitioning rules.
func NewSharded(edges []Edge, o ShardOptions) (*ShardedGraph, error) {
	g, err := NewGraph(edges)
	if err != nil {
		return nil, err
	}
	return ShardGraph(g, o)
}

// ShardGraph wraps an existing graph as a sharded one, cutting its
// history into o.Shards contiguous time-range shards at edge-count
// quantiles (the last shard, the frontier, keeps at least the newest
// timestamp rank and stays appendable). The graph becomes the sharded
// graph's spine: keep reading it if you like, but append only through the
// ShardedGraph from now on.
func ShardGraph(g *Graph, o ShardOptions) (*ShardedGraph, error) {
	if o.Replicas <= 0 {
		o.Replicas = DefaultShardReplicas
	}
	cuts := partitionCuts(g.g, o.Shards)
	dir, err := shard.NewDirectory(cuts)
	if err != nil {
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	sg := &ShardedGraph{
		opts:  o,
		spine: g,
		rt:    shard.NewRuntime(o.Replicas),
		dir:   dir,
	}
	sg.publishLocked()
	return sg, nil
}

// partitionCuts places parts-1 cuts at edge-count quantiles, each clamped
// below the frontier rank (TMax-1) so the newest timestamp always stays
// appendable.
func partitionCuts(tg *tgraph.Graph, parts int) []shard.Cut {
	if parts < 2 || tg.TMax() < 2 {
		return nil
	}
	m := tg.NumEdges()
	seq := tg.MutSeq()
	var cuts []shard.Cut
	prev := tgraph.TS(0)
	for i := 1; i < parts; i++ {
		r := tg.Edge(tgraph.EID(m * i / parts)).T
		if r > tg.TMax()-1 {
			r = tg.TMax() - 1
		}
		if r <= prev {
			continue
		}
		cuts = append(cuts, shard.Cut{RawEnd: tg.RawTime(r), End: r, Seq: seq})
		prev = r
	}
	return cuts
}

// publishLocked publishes the spine's current state and the current
// directory as one composite view.
//
// tkc:guardheld mu: callers hold sg.mu (or own the still-unshared graph
// during construction)
func (sg *ShardedGraph) publishLocked() {
	snap := sg.spine.Publish()
	sg.view.Store(&ShardedView{sg: sg, snap: snap, dir: sg.dir})
}

// Latest returns the most recently published view: one atomic load, safe
// from any goroutine.
//
// tkc:frozensource
func (sg *ShardedGraph) Latest() *ShardedView { return sg.view.Load() }

// Query starts a sharded scatter-gather request on the latest view; see
// ShardedView.Query.
func (sg *ShardedGraph) Query(k int) *Request { return sg.Latest().Query(k) }

// Append adds a batch of edges to the frontier shard, with Graph.Append
// semantics (non-decreasing timestamps, batch atomicity), then publishes a
// new view. When MaxShardEdges is configured and the frontier has grown
// past it, the frontier is sealed first. Writer-only. Implements
// AppendSink, so stream ingestion (AppendReader) and the serving layer
// batch through a ShardedGraph unchanged.
func (sg *ShardedGraph) Append(edges ...Edge) (int, error) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	var added int
	var err error
	if sg.st != nil {
		added, err = sg.st.append(edges)
	} else {
		added, err = sg.spine.Append(edges...)
	}
	if err != nil {
		return 0, err
	}
	if sg.opts.MaxShardEdges > 0 && sg.frontierEdgesLocked() >= sg.opts.MaxShardEdges {
		if _, err := sg.sealLocked(); err != nil {
			return added, err
		}
	}
	sg.publishLocked()
	return added, nil
}

// frontierEdgesLocked counts the open frontier's edges.
//
// tkc:guardheld mu: callers hold sg.mu
func (sg *ShardedGraph) frontierEdgesLocked() int {
	tg := sg.spine.g
	start := tgraph.TS(1)
	if n := sg.dir.NumSealed(); n > 0 {
		start = sg.dir.Cuts()[n-1].End + 1
	}
	if start > tg.TMax() {
		return 0
	}
	lo, hi := tg.EdgesIn(tgraph.Window{Start: start, End: tg.TMax()})
	return int(hi - lo)
}

// Seal freezes the current frontier shard into an immutable sealed shard
// and opens a new frontier above it, publishing the grown directory. The
// cut lands one rank below the current maximum timestamp — Append may
// still add edges at the maximum, so the sealed range is structurally
// immune to later writes. Returns false when there is nothing to seal
// (the frontier holds fewer than two timestamp ranks). Writer-only.
func (sg *ShardedGraph) Seal() (bool, error) {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	sealed, err := sg.sealLocked()
	if err != nil {
		return false, err
	}
	if sealed {
		sg.publishLocked()
	}
	return sealed, nil
}

// sealLocked cuts at rank TMax-1 if that extends the directory.
//
// tkc:guardheld mu: callers hold sg.mu
func (sg *ShardedGraph) sealLocked() (bool, error) {
	tg := sg.spine.g
	cut := tg.TMax() - 1
	last := tgraph.TS(0)
	if n := sg.dir.NumSealed(); n > 0 {
		last = sg.dir.Cuts()[n-1].End
	}
	if cut <= last {
		return false, nil
	}
	c := shard.Cut{RawEnd: tg.RawTime(cut), End: cut, Seq: tg.MutSeq()}
	d, err := sg.dir.Seal(c)
	if err != nil {
		return false, fmt.Errorf("temporalkcore: %w", err)
	}
	if sg.st != nil {
		if err := sg.st.syncShards(d); err != nil {
			return false, err
		}
	}
	sg.dir = d
	return true, nil
}

// NumShards returns the current shard count (sealed shards plus the
// frontier) of the latest view.
func (sg *ShardedGraph) NumShards() int { return sg.Latest().dir.NumShards() }

// Spine returns the underlying whole-history graph. Read freely (its
// queries run unsharded on the same epochs and share the same serving
// cache); mutate only through the ShardedGraph.
func (sg *ShardedGraph) Spine() *Graph { return sg.spine }

// SetCacheOptions reconfigures the serving cache shared by the sharded
// query paths, the spine and its snapshots; see Graph.SetCacheOptions.
func (sg *ShardedGraph) SetCacheOptions(o CacheOptions) { sg.spine.SetCacheOptions(o) }

// CacheStats reports the shared serving cache; see Graph.CacheStats.
func (sg *ShardedGraph) CacheStats() CacheStats { return sg.spine.CacheStats() }

// Close shuts the replica pools down (and the store, when durable). Safe
// to call twice. In-flight queries must drain first.
func (sg *ShardedGraph) Close() error {
	if sg.closed.Swap(true) {
		return nil
	}
	sg.rt.Close()
	sg.mu.Lock()
	st := sg.st
	sg.st = nil
	sg.mu.Unlock()
	if st != nil {
		return st.Close()
	}
	return nil
}

// ShardStats describes one shard of a published view, with its pool's
// serving counters.
type ShardStats struct {
	ID     int
	Sealed bool

	// StartTime and EndTime are the shard's inclusive raw-time bounds on
	// the view's epoch (the frontier's EndTime is the newest timestamp).
	StartTime, EndTime int64
	Edges              int   // edges in the shard's range
	Seq                int64 // seal-time mutation sequence; 0 for the frontier

	Replicas  int
	Tasks     int64 // span tasks this shard's pool has executed
	CacheHits int64 // tasks served from resident (or shared) CoreTime tables
	Patched   int64 // tasks that ran a boundary re-settle over the cut
}

// ShardStats reports the latest view's shards in time order.
func (sg *ShardedGraph) ShardStats() []ShardStats {
	v := sg.Latest()
	tg := v.snap.g
	cuts := v.dir.Cuts()
	out := make([]ShardStats, 0, v.dir.NumShards())
	start := tgraph.TS(1)
	for i := 0; i < v.dir.NumShards(); i++ {
		end := tg.TMax()
		s := ShardStats{ID: i, Replicas: sg.rt.Replicas()}
		if i < len(cuts) {
			end = cuts[i].End
			s.Sealed = true
			s.Seq = cuts[i].Seq
		}
		if start <= end {
			lo, hi := tg.EdgesIn(tgraph.Window{Start: start, End: end})
			s.Edges = int(hi - lo)
			s.StartTime = tg.RawTime(start)
			s.EndTime = tg.RawTime(end)
		}
		ps := sg.rt.Stats(i)
		s.Tasks, s.CacheHits, s.Patched = ps.Tasks, ps.CacheHits, ps.Patched
		out = append(out, s)
		start = end + 1
	}
	return out
}

// Seq returns the view's epoch sequence number; see Snapshot.Seq.
func (v *ShardedView) Seq() int64 { return v.snap.Seq() }

// NumShards returns the view's shard count.
func (v *ShardedView) NumShards() int { return v.dir.NumShards() }

// Snapshot returns the view's pinned epoch as an ordinary Snapshot, whose
// queries run unsharded against exactly the same state — the oracle the
// sharded differential tests compare against.
func (v *ShardedView) Snapshot() *Snapshot { return v.snap }

// Query starts a scatter-gather request against this view: the plan pins
// the view's epoch and directory, streams merged results in the same
// order (and bytes) as an unsharded query of the same window, and
// supports the one-shot builder verbs — Window, Project, EarlyStop,
// Stats — plus every execution mode. Algorithm, Snapshot and Using are
// engine overrides of the unsharded path and are rejected.
func (v *ShardedView) Query(k int) *Request {
	r := v.snap.Graph.Query(k)
	r.sview = v
	return r
}
