package temporalkcore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/phc"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// histScratch pools the vertex/edge id buffers of historical index
// queries, so the serving path allocates only the projected output (and
// nothing at all for ProjectCount).
type histScratch struct {
	vids []tgraph.VID
	eids []tgraph.EID
}

var histPool = sync.Pool{New: func() any { return new(histScratch) }}

// runHistorical executes a Using(index)/HistoricalIndex.Query request: the
// single snapshot k-core over the window, answered from the PHC index and
// emitted as one Core (or none when empty). It reads only the epoch pinned
// inside the index, never the live graph, so it is safe concurrently with
// appends.
func (r *Request) runHistorical(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	h := r.hix
	w, err := h.window(r.start, r.end)
	if err != nil {
		return *qs, err
	}
	if err := ctx.Err(); err != nil {
		return *qs, err
	}
	began := time.Now()
	s := histPool.Get().(*histScratch)
	if r.proj == ProjectVertices {
		s.vids = h.ix.CoreVertices(h.at, r.k, w, s.vids[:0])
		r.emitSnapshot(qs, fn, h.at, w, s.vids, nil)
	} else {
		s.eids = h.ix.CoreEdges(h.at, r.k, w, s.eids[:0])
		r.emitSnapshot(qs, fn, h.at, w, nil, s.eids)
	}
	histPool.Put(s) // emitSnapshot copies into the output Core; the ids are free again
	qs.EnumTime = time.Since(began)
	return *qs, nil
}

// HistoricalIndex answers historical k-core queries — "which vertices form
// the k-core of the snapshot over [ts, te]?" — for every k at once, after
// a one-off construction. It reproduces the PHC index of Yu et al. (VLDB
// 2021), the foundation the enumeration algorithm of this library builds
// on.
//
// Memory model: an index is pinned to the graph epoch it was built from —
// an immutable frozen state, captured at construction time — and every
// query reads only that epoch and the index labels, never the live graph.
// The index is immutable and safe for concurrent use from any number of
// goroutines, including while a writer goroutine keeps appending to the
// live graph (the same guarantee Snapshot gives; see Freeze). Appended
// edges never become visible through an existing index: obtain a fresh one
// with Graph.HistoricalIndex, which patches incrementally instead of
// rebuilding.
type HistoricalIndex struct {
	g  *Graph        // graph lineage: serving cache + patch oracle live on its hub
	at *tgraph.Graph // pinned immutable epoch the index answers for
	ix *phc.Index
}

// HistoricalIndex returns the PHC index of the graph's current epoch over
// the raw time range [start, end], ready to answer snapshot k-core queries
// for every k at once. This is the serving path of the historical tier:
//
//   - Indexes are served through the graph's epoch-keyed cache under
//     (epoch seq, indexed range): a repeat call on the same graph state is
//     a warm hit costing one lookup, concurrent identical calls share one
//     build (singleflight), and entries of retired epochs are dropped when
//     the serving layer drains them.
//   - After an Append, the next call maintains the index incrementally: it
//     re-settles only the dirty time-suffix past the previous index's
//     frontier (falling back to a full build when the dirty region
//     dominates the window), so append + requery costs a fraction of a
//     from-scratch construction.
//   - The build is cancellable: ctx is polled inside every per-k settle
//     loop with a bounded stride, and a cancelled build returns ctx.Err()
//     leaving the cache and oracle untouched.
//
// Like Freeze, it must be called from the writer goroutine (or while no
// Append runs) because pinning reads the mutable graph; the returned index
// may then be queried from any goroutine, concurrently with further
// appends. Calling it on a Snapshot pins that snapshot's epoch.
//
// tkc:allow-background: tolerates nil ctx from v1 callers
func (g *Graph) HistoricalIndex(ctx context.Context, start, end int64) (*HistoricalIndex, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	at := g.pinned()
	w, err := windowOf(at, start, end)
	if err != nil {
		return nil, err
	}
	if c := g.cache(); c != nil {
		key := qcache.Key{Seq: at.MutSeq(), W: w, Algo: qcache.AlgoPHC}
		if !c.Uncacheable(key) {
			ent, _, err := c.GetOrBuild(ctx, key, func() (*qcache.Entry, error) {
				began := time.Now()
				ix, err := g.buildOrPatchPHC(ctx, at, w)
				if err != nil {
					return nil, err
				}
				return qcache.NewPHCEntry(ix, time.Since(began)), nil
			})
			if err != nil {
				return nil, err
			}
			return &HistoricalIndex{g: g, at: at, ix: ent.Phc}, nil
		}
	}
	ix, err := g.buildOrPatchPHC(ctx, at, w)
	if err != nil {
		return nil, err
	}
	return &HistoricalIndex{g: g, at: at, ix: ix}, nil
}

// pinned returns an immutable view of the graph's current state: the graph
// itself when it is already frozen (Snapshot receivers), the published
// latest epoch or the memoised last pin when either matches the current
// state (no copying), otherwise a fresh Freeze recorded as the next memo.
// Writer-side, like Freeze.
//
// tkc:frozensource
func (g *Graph) pinned() *tgraph.Graph {
	if g.g.Frozen() {
		return g.g
	}
	if ep := g.hub.latest.Load(); ep != nil && ep.g.MutSeq() == g.g.MutSeq() {
		return ep.g
	}
	if p := g.hub.lastPin.Load(); p != nil && p.MutSeq() == g.g.MutSeq() {
		return p
	}
	p := g.g.Freeze()
	g.hub.lastPin.Store(p)
	return p
}

// buildOrPatchPHC produces the index for (at, w), patching from the
// lineage's most recent index when its fingerprint proves it a state
// prefix, and records the result as the next patch oracle. vct.ErrStopped
// is translated to ctx's error.
func (g *Graph) buildOrPatchPHC(ctx context.Context, at *tgraph.Graph, w tgraph.Window) (*phc.Index, error) {
	stop := core.StopFromCtx(ctx)
	var ix *phc.Index
	var err error
	if last := g.hub.lastHist.Load(); last != nil && last.Fp.MutSeq <= at.MutSeq() {
		if last.Fp.MutSeq == at.MutSeq() && last.Range == w {
			return last, nil // exact state and range: the oracle is the answer
		}
		// Appends are time-ordered, so every snapshot ending before the
		// previous index's rank frontier is untouched — that frontier is
		// the dirty watermark bounding the re-settle region.
		ix, _, err = last.PatchStop(at, w, tgraph.TS(last.Fp.TMax), stop)
	} else {
		ix, err = phc.BuildStop(at, w, stop)
	}
	if err != nil {
		if errors.Is(err, vct.ErrStopped) {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
		}
		return nil, err
	}
	g.hub.lastHist.Store(ix)
	return ix, nil
}

// BuildHistoricalIndex constructs the index over the raw time range
// [start, end].
//
// Deprecated: use Graph.HistoricalIndex, which adds context cancellation
// and serves repeat builds from the epoch-keyed cache (a warm call costs
// one lookup; after an Append the index is patched incrementally instead
// of rebuilt). This shim is that path with context.Background().
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) BuildHistoricalIndex(start, end int64) (*HistoricalIndex, error) {
	return g.HistoricalIndex(context.Background(), start, end)
}

// KMax returns the largest k for which any historical k-core exists in the
// indexed range.
func (h *HistoricalIndex) KMax() int { return h.ix.KMax }

// Size returns the total number of index labels (the |PHC| of [13]).
func (h *HistoricalIndex) Size() int { return h.ix.Size() }

// Seq returns the mutation sequence number of the epoch the index is
// pinned to (see Snapshot.Seq): the exact graph state its answers hold
// for.
func (h *HistoricalIndex) Seq() int64 { return h.ix.Fp.MutSeq }

// window converts a raw query range, requiring it inside the index range.
// Resolution uses the pinned epoch, so ranks never shift under the query
// even while the live graph appends.
func (h *HistoricalIndex) window(start, end int64) (tgraph.Window, error) {
	w, err := windowOf(h.at, start, end)
	if err != nil {
		return tgraph.Window{}, err
	}
	if !h.ix.Range.Contains(w) {
		return tgraph.Window{}, fmt.Errorf("temporalkcore: query window outside indexed range")
	}
	return w, nil
}

// Contains reports whether a vertex label is in the k-core of the snapshot
// over [start, end].
func (h *HistoricalIndex) Contains(label int64, k int, start, end int64) (bool, error) {
	v, ok := h.at.VertexOf(label)
	if !ok {
		return false, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := h.window(start, end)
	if err != nil {
		return false, err
	}
	return h.ix.InCore(v, k, w), nil
}

// CoreMembers returns the vertex labels (sorted ascending) of the k-core
// of the snapshot over [start, end].
//
// Deprecated: use the v2 builder, which adds context cancellation:
// h.Query(k).Window(start, end).Project(ProjectVertices).First(ctx).
// Since v2 the returned labels are sorted ascending (pre-v2 they followed
// internal vertex-id order).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (h *HistoricalIndex) CoreMembers(k int, start, end int64) ([]int64, error) {
	c, ok, err := h.Query(k).Window(start, end).Project(ProjectVertices).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []int64{}, nil
	}
	return c.Vertices, nil
}

// CoreEdges returns the temporal edges of the k-core of the snapshot over
// [start, end].
//
// Deprecated: use the v2 builder:
// h.Query(k).Window(start, end).First(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (h *HistoricalIndex) CoreEdges(k int, start, end int64) ([]Edge, error) {
	c, ok, err := h.Query(k).Window(start, end).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []Edge{}, nil
	}
	return c.Edges, nil
}

// CoreNumber returns the largest k such that the vertex is in the k-core
// of the snapshot over [start, end] (0 when it is isolated there).
func (h *HistoricalIndex) CoreNumber(label int64, start, end int64) (int, error) {
	v, ok := h.at.VertexOf(label)
	if !ok {
		return 0, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := h.window(start, end)
	if err != nil {
		return 0, err
	}
	return h.ix.CoreNumber(v, w), nil
}

// Save writes the index in a compact binary form readable by
// Graph.LoadHistoricalIndex, including a fingerprint of the epoch it was
// built from. The graph itself is not stored.
func (h *HistoricalIndex) Save(w io.Writer) error { return h.ix.Encode(w) }

// LoadHistoricalIndex reads an index written by Save. The stored graph
// fingerprint (vertex/edge counts, rank ceiling, mutation sequence number)
// must match the graph's current state exactly, so an index cannot be
// loaded against a different graph — or a different epoch of the same
// graph — and silently answer wrongly. A graph rebuilt after a restart
// matches when it reaches the saved state the same way (the same one-shot
// construction, or the same append replay); re-derive the index with
// Graph.HistoricalIndex otherwise.
func (g *Graph) LoadHistoricalIndex(r io.Reader) (*HistoricalIndex, error) {
	ix, err := phc.Decode(r)
	if err != nil {
		return nil, err
	}
	at := g.pinned()
	if !ix.Fp.Matches(at) {
		got := phc.FingerprintOf(at)
		return nil, fmt.Errorf("temporalkcore: index fingerprint (%d vertices, %d edges, %d ranks, seq %d) does not match the graph (%d, %d, %d, seq %d) — index built from a different graph or epoch",
			ix.Fp.Vertices, ix.Fp.Edges, ix.Fp.TMax, ix.Fp.MutSeq,
			got.Vertices, got.Edges, got.TMax, got.MutSeq)
	}
	return &HistoricalIndex{g: g, at: at, ix: ix}, nil
}
