package temporalkcore

import (
	"context"
	"fmt"
	"io"
	"time"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
)

// runHistorical executes a Using(index)/HistoricalIndex.Query request: the
// single snapshot k-core over the window, answered from the PHC index and
// emitted as one Core (or none when empty).
func (r *Request) runHistorical(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	h := r.hix
	w, err := h.window(r.start, r.end)
	if err != nil {
		return *qs, err
	}
	if err := ctx.Err(); err != nil {
		return *qs, err
	}
	began := time.Now()
	var vids []tgraph.VID
	var eids []tgraph.EID
	if r.proj == ProjectVertices {
		vids = h.ix.CoreVertices(h.g.g, r.k, w, nil)
	} else {
		eids = h.ix.CoreEdges(h.g.g, r.k, w, nil)
	}
	r.emitSnapshot(qs, fn, w, vids, eids)
	qs.EnumTime = time.Since(began)
	return *qs, nil
}

// HistoricalIndex answers historical k-core queries — "which vertices form
// the k-core of the snapshot over [ts, te]?" — for every k at once, after a
// one-off construction. It reproduces the PHC index of Yu et al. (VLDB
// 2021), the foundation the enumeration algorithm of this library builds
// on. The index is immutable and safe for concurrent use.
type HistoricalIndex struct {
	g  *Graph
	ix *phc.Index
}

// BuildHistoricalIndex constructs the index over the raw time range
// [start, end].
func (g *Graph) BuildHistoricalIndex(start, end int64) (*HistoricalIndex, error) {
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	ix, err := phc.Build(g.g, w)
	if err != nil {
		return nil, err
	}
	return &HistoricalIndex{g: g, ix: ix}, nil
}

// KMax returns the largest k for which any historical k-core exists in the
// indexed range.
func (h *HistoricalIndex) KMax() int { return h.ix.KMax }

// Size returns the total number of index labels (the |PHC| of [13]).
func (h *HistoricalIndex) Size() int { return h.ix.Size() }

// window converts a raw query range, requiring it inside the index range.
func (h *HistoricalIndex) window(start, end int64) (tgraph.Window, error) {
	w, err := h.g.window(start, end)
	if err != nil {
		return tgraph.Window{}, err
	}
	if !h.ix.Range.Contains(w) {
		return tgraph.Window{}, fmt.Errorf("temporalkcore: query window outside indexed range")
	}
	return w, nil
}

// Contains reports whether a vertex label is in the k-core of the snapshot
// over [start, end].
func (h *HistoricalIndex) Contains(label int64, k int, start, end int64) (bool, error) {
	v, ok := h.g.g.VertexOf(label)
	if !ok {
		return false, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := h.window(start, end)
	if err != nil {
		return false, err
	}
	return h.ix.InCore(v, k, w), nil
}

// CoreMembers returns the vertex labels (sorted ascending) of the k-core
// of the snapshot over [start, end].
//
// Deprecated: use the v2 builder, which adds context cancellation:
// h.Query(k).Window(start, end).Project(ProjectVertices).First(ctx).
// Since v2 the returned labels are sorted ascending (pre-v2 they followed
// internal vertex-id order).
func (h *HistoricalIndex) CoreMembers(k int, start, end int64) ([]int64, error) {
	c, ok, err := h.Query(k).Window(start, end).Project(ProjectVertices).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []int64{}, nil
	}
	return c.Vertices, nil
}

// CoreEdges returns the temporal edges of the k-core of the snapshot over
// [start, end].
//
// Deprecated: use the v2 builder:
// h.Query(k).Window(start, end).First(ctx).
func (h *HistoricalIndex) CoreEdges(k int, start, end int64) ([]Edge, error) {
	c, ok, err := h.Query(k).Window(start, end).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []Edge{}, nil
	}
	return c.Edges, nil
}

// CoreNumber returns the largest k such that the vertex is in the k-core
// of the snapshot over [start, end] (0 when it is isolated there).
func (h *HistoricalIndex) CoreNumber(label int64, start, end int64) (int, error) {
	v, ok := h.g.g.VertexOf(label)
	if !ok {
		return 0, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := h.window(start, end)
	if err != nil {
		return 0, err
	}
	return h.ix.CoreNumber(v, w), nil
}

// Save writes the index in a compact binary form readable by
// Graph.LoadHistoricalIndex. The graph itself is not stored.
func (h *HistoricalIndex) Save(w io.Writer) error { return h.ix.Encode(w) }

// LoadHistoricalIndex reads an index written by Save. It must be loaded
// against the same graph it was built from.
func (g *Graph) LoadHistoricalIndex(r io.Reader) (*HistoricalIndex, error) {
	ix, err := phc.Decode(r)
	if err != nil {
		return nil, err
	}
	if ix.Range.End > g.g.TMax() {
		return nil, fmt.Errorf("temporalkcore: index range [%d,%d] exceeds graph (different graph?)",
			ix.Range.Start, ix.Range.End)
	}
	return &HistoricalIndex{g: g, ix: ix}, nil
}
