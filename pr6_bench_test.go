package temporalkcore_test

import (
	"context"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/bench"
)

// cmStream loads the benchEdges-scale CM replica as a raw public edge
// stream split 99%/1%: the base graph and the time-ordered tail batch the
// append benchmarks feed through the frontier (the same split the dyn
// patch benchmarks use).
func cmStream(b *testing.B) (base, tail []tkc.Edge) {
	b.Helper()
	d, err := bench.LoadDataset("CM", benchEdges, 42)
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]tkc.Edge, 0, d.G.NumEdges())
	for _, te := range d.G.Edges() {
		raw = append(raw, tkc.Edge{U: d.G.Label(te.U), V: d.G.Label(te.V), Time: d.G.RawTime(te.T)})
	}
	cut := len(raw) * 99 / 100
	return raw[:cut], raw[cut:]
}

// BenchmarkHistoricalPatchVsRebuild measures the incremental-maintenance
// claim of the historical tier on the CM replica: after a 1% time-ordered
// append, re-deriving the full-range PHC index via the patch path (the
// previous index re-settles only the dirty time-suffix) versus building it
// from scratch. Both subtests time exactly Append + HistoricalIndex; they
// differ only in whether a previous index exists to patch from. The ratio
// is the PR's ≥5x acceptance criterion, recorded in BENCH_PR6.json.
func BenchmarkHistoricalPatchVsRebuild(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)

	b.Run("patch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tkc.NewGraph(base)
			if err != nil {
				b.Fatal(err)
			}
			lo, hi := g.TimeSpan()
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil { // the index to patch from
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := g.Append(tail...); err != nil {
				b.Fatal(err)
			}
			lo, hi = g.TimeSpan()
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tkc.NewGraph(base)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := g.Append(tail...); err != nil {
				b.Fatal(err)
			}
			lo, hi := g.TimeSpan()
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHistoricalCacheHit measures the serving side of the historical
// tier on the CM replica's full range:
//
//   - warm: a repeat HistoricalIndex call on the same graph state — one
//     epoch-keyed cache lookup, the O(lookup) property the bench gate
//     guards.
//   - warm-query: a full historical count query through the v2 builder on
//     a warm index handle — the pooled-scratch path whose allocs/op the
//     gate pins near zero.
func BenchmarkHistoricalCacheHit(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)
	full := append(append([]tkc.Edge(nil), base...), tail...)
	g, err := tkc.NewGraph(full)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	h, err := g.HistoricalIndex(ctx, lo, hi)
	if err != nil {
		b.Fatal(err)
	}
	k := 3
	if h.KMax() < k {
		k = h.KMax()
	}

	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-query", func(b *testing.B) {
		if _, err := h.Query(k).Window(lo, hi).Count(ctx); err != nil {
			b.Fatal(err) // warm the id pools
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qs, err := h.Query(k).Window(lo, hi).Count(ctx)
			if err != nil || qs.Cores == 0 {
				b.Fatalf("cores=%d err=%v", qs.Cores, err)
			}
		}
	})
}
