// Command streamingfraud demonstrates the dynamic append subsystem on a
// live fraud-detection scenario: a payment network ingests transaction
// batches continuously, and a Watcher maintains the temporal k-cores of
// the trailing window so collusion rings — accounts that all transact
// with each other within a short span — surface the moment they form,
// without ever rebuilding the graph or its indexes from scratch.
//
// Background traffic is sparse and random, so it forms no 3-core. The
// planted ring starts cycling money at t=600; every member keeps paying
// several others inside narrow bursts, which is exactly a temporal 3-core
// confined to a small window.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	tkc "temporalkcore"
)

const (
	accounts  = 400
	ringSize  = 6
	ringStart = 600 // the ring activates at this time
	span      = 120 // the monitor watches the trailing 2 minutes
	batchSize = 250
	horizon   = 1200
)

func main() {
	r := rand.New(rand.NewSource(7))

	// Ring members are ordinary-looking accounts.
	ring := make([]int64, ringSize)
	for i := range ring {
		ring[i] = int64(100 + i)
	}

	stream := synthesise(r, ring)
	g, err := tkc.NewGraph(stream[:batchSize])
	if err != nil {
		log.Fatal(err)
	}
	w, err := g.Watch(3, span)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring %d accounts for 3-rings in the trailing %d time units\n\n", accounts, span)
	alerted := false
	for i := batchSize; i < len(stream); i += batchSize {
		j := i + batchSize
		if j > len(stream) {
			j = len(stream)
		}
		if _, err := w.Append(stream[i:j]...); err != nil {
			log.Fatal(err)
		}
		ws, we, err := w.Window()
		if err != nil {
			log.Fatal(err)
		}
		cores, err := w.Cores()
		if err != nil {
			log.Fatal(err)
		}
		if len(cores) == 0 {
			fmt.Printf("t=[%4d,%4d] %4d txns ingested: clean\n", ws, we, j)
			continue
		}
		members := suspects(cores)
		fmt.Printf("t=[%4d,%4d] %4d txns ingested: ALERT — %d dense ring window(s), accounts %v\n",
			ws, we, j, len(cores), members)
		if !alerted {
			alerted = true
			c := cores[0]
			fmt.Printf("           first ring confined to [%d,%d]: every member paid >=3 others inside it\n",
				c.Start, c.End)
		}
	}

	st := w.Stats()
	fmt.Printf("\ningested %d transactions; %d incremental refreshes (%.1fms), %d rebuilds (%.1fms)\n",
		g.NumEdges(), st.Patches, st.PatchTime.Seconds()*1000, st.Rebuilds, st.RebuildTime.Seconds()*1000)
}

// synthesise produces the time-ordered transaction stream: uniform
// background noise plus the ring's bursts after ringStart.
func synthesise(r *rand.Rand, ring []int64) []tkc.Edge {
	var stream []tkc.Edge
	for t := int64(1); t <= horizon; t++ {
		// Background: a couple of random payments per tick; random pairs
		// in a 400-account network almost never close a dense subgraph.
		for i := 0; i < 2+r.Intn(3); i++ {
			u, v := int64(r.Intn(accounts)), int64(r.Intn(accounts))
			stream = append(stream, tkc.Edge{U: u, V: v, Time: t})
		}
		// The ring: from ringStart on, bursts where every member pays
		// several of the others within a few ticks.
		if t >= ringStart && t%40 < 5 {
			for i := 0; i < len(ring); i++ {
				for d := 1; d <= 3; d++ {
					stream = append(stream, tkc.Edge{U: ring[i], V: ring[(i+d)%len(ring)], Time: t})
				}
			}
		}
	}
	return stream
}

// suspects collects the distinct account labels over all reported cores.
func suspects(cores []tkc.Core) []int64 {
	set := map[int64]bool{}
	for _, c := range cores {
		for _, e := range c.Edges {
			set[e.U] = true
			set[e.V] = true
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
