// Misinformation bursts: the paper's social-network motivation. A bot farm
// amplifies content in several short bursts at different times. Any
// single-window query can miss bursts that do not align with it; exhaustive
// temporal k-core enumeration examines every window and recovers each burst
// — and shows the same troll accounts recurring across them.
//
// Run with: go run ./examples/misinfo
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	tkc "temporalkcore"
)

const (
	users      = 600
	hours      = 720  // one month
	organic    = 1700 // kept below the 4-core threshold; see examples/fraudrings
	botCount   = 10
	k          = 4
	burstWidth = 10
)

var burstStarts = []int{80, 350, 610} // three amplification campaigns

func main() {
	r := rand.New(rand.NewSource(21))
	var edges []tkc.Edge

	// Organic interactions (replies, retweets) all month.
	for i := 0; i < organic; i++ {
		u := int64(r.Intn(users))
		v := int64(r.Intn(users))
		if u == v {
			continue
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: int64(1 + r.Intn(hours))})
	}

	// The bot farm: accounts 9000..9009 interact densely during each burst
	// (mutual retweet rings), quiet otherwise.
	for _, bs := range burstStarts {
		for h := bs; h < bs+burstWidth; h++ {
			for i := 0; i < botCount; i++ {
				for j := i + 1; j < botCount; j++ {
					if r.Float64() < 0.3 {
						edges = append(edges, tkc.Edge{U: int64(9000 + i), V: int64(9000 + j), Time: int64(h)})
					}
				}
			}
		}
	}

	g, err := tkc.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interaction graph: %d users, %d interactions over %d hours\n\n",
		g.NumVertices(), g.NumEdges(), hours)

	// Enumerate every temporal k-core of the month and keep the windows
	// that are suspiciously short (tight bursts of coordinated density).
	type burst struct {
		start, end int64
		members    []int64
	}
	var bursts []burst
	stats, err := g.CoresFunc(k, 1, hours, func(c tkc.Core) bool {
		if c.End-c.Start <= 2*burstWidth {
			bursts = append(bursts, burst{start: c.Start, end: c.End, members: members(c)})
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("examined %d temporal %d-cores (|R|=%d edges)\n", stats.Cores, k, stats.Edges)
	fmt.Printf("tight bursts (span <= %dh): %d\n\n", 2*burstWidth, len(bursts))

	// Cluster the tight bursts by membership: recurring identical member
	// sets across distant windows are the signature of a bot farm.
	byMembers := map[string][]burst{}
	for _, b := range bursts {
		byMembers[fmt.Sprint(b.members)] = append(byMembers[fmt.Sprint(b.members)], b)
	}
	for key, group := range byMembers {
		windows := map[string]bool{}
		for _, b := range group {
			// Bucket by coarse window so overlapping TTIs of one campaign
			// count once.
			windows[fmt.Sprintf("%d", b.start/50)] = true
		}
		if len(windows) >= 2 {
			fmt.Printf("recurring dense group %s\n", key)
			earliest := map[string]burst{}
			for _, b := range group {
				bucket := fmt.Sprintf("%d", b.start/50)
				if cur, ok := earliest[bucket]; !ok || b.end-b.start < cur.end-cur.start {
					earliest[bucket] = b
				}
			}
			spans := make([]string, 0, len(earliest))
			for _, b := range earliest {
				spans = append(spans, fmt.Sprintf("[%d,%d]", b.start, b.end))
			}
			sort.Strings(spans)
			fmt.Printf("  active in %d separate campaigns, tightest windows: %v\n", len(windows), spans)
			fmt.Printf("  planted campaigns started at hours %v\n", burstStarts)
		}
	}
}

func members(c tkc.Core) []int64 {
	seen := map[int64]bool{}
	for _, e := range c.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
