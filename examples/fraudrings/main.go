// Fraud rings: the paper's anti-money-laundering motivation. A transaction
// network hides a ring of accounts that cycle funds among themselves during
// a short burst. A static k-core over the whole history drowns the ring in
// background noise and reports an uninformative time span; enumerating
// temporal k-cores recovers both the ring membership and the exact burst
// window, without knowing either in advance.
//
// Run with: go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	tkc "temporalkcore"
)

const (
	accounts = 400
	days     = 365
	// Legitimate transfers, uniform over the year. The density is kept
	// below the 4-core emergence threshold (average degree ~6.8 for random
	// graphs), so dense subgraphs in the data are genuine signal — with a
	// much denser background the number of temporal k-cores explodes
	// quadratically in the range length, which is exactly the |R| blowup
	// the paper measures (see Figure 11), but not useful for a demo.
	background = 1100
	ringSize   = 8
	ringStart  = 200 // the laundering burst: days 200-214
	ringEnd    = 214
	k          = 4
)

func main() {
	r := rand.New(rand.NewSource(7))
	var edges []tkc.Edge

	// Legitimate traffic: random transfers between random accounts.
	for i := 0; i < background; i++ {
		u := int64(r.Intn(accounts))
		v := int64(r.Intn(accounts))
		if u == v {
			continue
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: int64(1 + r.Intn(days))})
	}

	// The ring: accounts 1000..1007 transact densely during the burst.
	ring := make([]int64, ringSize)
	for i := range ring {
		ring[i] = int64(1000 + i)
	}
	for day := ringStart; day <= ringEnd; day++ {
		for i := 0; i < ringSize; i++ {
			for j := i + 1; j < ringSize; j++ {
				if r.Float64() < 0.35 {
					edges = append(edges, tkc.Edge{U: ring[i], V: ring[j], Time: int64(day)})
				}
			}
		}
	}

	g, err := tkc.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction network: %d accounts, %d transfers over %d days\n\n",
		g.NumVertices(), g.NumEdges(), days)

	// A static analysis: the k-core of the entire year. The TTI spans most
	// of the year, so it says nothing about when the ring operated.
	full, err := g.Cores(k, 1, days)
	if err != nil {
		log.Fatal(err)
	}
	var widest tkc.Core
	for _, c := range full {
		if c.End-c.Start > widest.End-widest.Start {
			widest = c
		}
	}
	fmt.Printf("static view: widest %d-core spans days [%d,%d] — no usable burst signal\n",
		k, widest.Start, widest.End)

	// The temporal view: the core with the narrowest TTI pinpoints the
	// burst, and its vertex set is the ring.
	tightest := widest
	for _, c := range full {
		if c.End-c.Start < tightest.End-tightest.Start {
			tightest = c
		}
	}
	fmt.Printf("temporal view: tightest %d-core spans days [%d,%d] (planted burst: [%d,%d])\n",
		k, tightest.Start, tightest.End, ringStart, ringEnd)

	suspects := vertexSet(tightest)
	fmt.Printf("suspect accounts: %v\n", suspects)

	hits := 0
	for _, s := range suspects {
		if s >= 1000 && s < 1000+ringSize {
			hits++
		}
	}
	fmt.Printf("recovered %d/%d ring members (plus %d bystanders)\n\n",
		hits, ringSize, len(suspects)-hits)

	// Distinct suspect groups across all windows, the compact future-work
	// representation: every dense group that ever existed, regardless of
	// window.
	sets, err := g.VertexSets(k, 1, days)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distinct dense account groups over the year: %d\n", len(sets))
}

func vertexSet(c tkc.Core) []int64 {
	seen := map[int64]bool{}
	for _, e := range c.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
