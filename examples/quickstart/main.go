// Quickstart: build a small temporal graph and enumerate temporal 2-cores
// through the v2 query builder — composable requests, streaming iterator
// results and context cancellation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	tkc "temporalkcore"
)

func main() {
	ctx := context.Background()

	// The running example of the paper (Figure 1): nine vertices, fourteen
	// timestamped interactions.
	edges := []tkc.Edge{
		{U: 2, V: 9, Time: 1}, {U: 1, V: 4, Time: 2}, {U: 2, V: 3, Time: 2},
		{U: 1, V: 2, Time: 3}, {U: 2, V: 4, Time: 3}, {U: 3, V: 9, Time: 4},
		{U: 4, V: 8, Time: 4}, {U: 1, V: 6, Time: 5}, {U: 1, V: 7, Time: 5},
		{U: 2, V: 8, Time: 5}, {U: 6, V: 7, Time: 5}, {U: 1, V: 3, Time: 6},
		{U: 3, V: 5, Time: 6}, {U: 1, V: 5, Time: 7},
	}
	g, err := tkc.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d timestamps, kmax=%d\n\n",
		g.NumVertices(), g.NumEdges(), g.TimestampCount(), g.KMax())

	// Every distinct temporal 2-core of any window within [1, 4] — this is
	// exactly Figure 2 of the paper: two cores.
	cores, err := g.Query(2).Window(1, 4).Collect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal 2-cores in range [1,4]: %d\n", len(cores))
	for _, c := range cores {
		fmt.Printf("  TTI=[%d,%d]: %v\n", c.Start, c.End, c.Edges)
	}

	// Streaming over a wider range: cores are produced as the loop consumes
	// them, so breaking out stops the engine after the cores you paid for.
	var stats tkc.QueryStats
	fmt.Println("\ntemporal 2-cores in range [1,7]:")
	for c, err := range g.Query(2).Window(1, 7).Stats(&stats).Seq(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  TTI=[%d,%d] with %d edges\n", c.Start, c.End, len(c.Edges))
	}
	fmt.Printf("total: %d cores, |R|=%d edges, |VCT|=%d, |ECS|=%d\n",
		stats.Cores, stats.Edges, stats.VCTSize, stats.ECSSize)

	// Projections skip the work you don't need: the vertex view of the
	// same result stream, one sorted label set per core.
	fmt.Println("\nvertex sets of the 2-cores in [1,7]:")
	for c, err := range g.Query(2).Window(1, 7).Project(tkc.ProjectVertices).Seq(ctx) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  TTI=[%d,%d]: %v\n", c.Start, c.End, c.Vertices)
	}

	// Core times answer "from when is this vertex part of dense activity".
	ents, err := g.CoreTimes(1, 2, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncore times of vertex 1 (start time -> earliest core end time):")
	for _, e := range ents {
		if e.Infinite {
			fmt.Printf("  from start %d: never in a 2-core again\n", e.Start)
		} else {
			fmt.Printf("  from start %d: in a 2-core once the window reaches %d\n", e.Start, e.CoreTime)
		}
	}
}
