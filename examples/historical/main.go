// Historical k-core queries: build the multi-k PHC-style index once, then
// answer point-in-time cohesion questions instantly — "was this account
// inside a dense cluster during that week?", "how cohesive was this user's
// neighbourhood in March?". This is the foundation (reference [13]) the
// temporal k-core enumeration of this library builds on.
//
// Run with: go run ./examples/historical
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	tkc "temporalkcore"
)

const (
	users = 300
	weeks = 52
)

func main() {
	r := rand.New(rand.NewSource(5))
	var edges []tkc.Edge

	// A year of weekly interactions with one tightly knit group (accounts
	// 100..105) that is only active in weeks 10-14.
	for i := 0; i < 2200; i++ {
		u := int64(r.Intn(users))
		v := int64(r.Intn(users))
		if u == v {
			continue
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: int64(1 + r.Intn(weeks))})
	}
	for w := 10; w <= 14; w++ {
		for i := 100; i <= 105; i++ {
			for j := i + 1; j <= 105; j++ {
				if r.Float64() < 0.6 {
					edges = append(edges, tkc.Edge{U: int64(i), V: int64(j), Time: int64(w)})
				}
			}
		}
	}

	g, err := tkc.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}

	// One-off index construction covering the whole year, all k at once.
	h, err := g.BuildHistoricalIndex(1, weeks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vertices, %d edges: kmax=%d, %d labels\n\n",
		g.NumVertices(), g.NumEdges(), h.KMax(), h.Size())

	// Point queries: cohesion of account 100 in different periods.
	for _, period := range [][2]int64{{10, 14}, {20, 24}, {1, 52}} {
		cn, err := h.CoreNumber(100, period[0], period[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("account 100, weeks [%d,%d]: core number %d\n", period[0], period[1], cn)
	}

	// Membership of the 4-core during the active burst.
	members, err := h.CoreMembers(4, 10, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4-core members during weeks [10,14]: %v\n", members)

	// The index serialises; a deployment builds it offline and ships it.
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	back, err := g.LoadHistoricalIndex(&buf)
	if err != nil {
		log.Fatal(err)
	}
	in, err := back.Contains(103, 4, 10, 14)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindex round-trip: %d bytes; account 103 in the burst 4-core: %v\n", size, in)
}
