// Contact tracing: the paper's epidemiological motivation. Transmission
// clusters during an outbreak emerge and dissipate over short, irregular,
// initially unknown timeframes. Enumerating temporal k-cores over a whole
// monitoring period surfaces every fleeting high-contact cluster, so health
// authorities can reconstruct transmission chains without guessing windows.
//
// Run with: go run ./examples/contacttracing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	tkc "temporalkcore"
)

const (
	people  = 500
	daysObs = 120
	casual  = 700 // below the 3-core threshold; see examples/fraudrings
	k       = 3
)

// Outbreak clusters: (household/venue id, people, day range). Durations are
// deliberately irregular.
type cluster struct {
	base     int64
	size     int
	from, to int
}

var clusters = []cluster{
	{base: 7000, size: 6, from: 20, to: 24},   // a household gathering
	{base: 7100, size: 9, from: 45, to: 47},   // a two-day event
	{base: 7200, size: 5, from: 80, to: 92},   // a slow workplace cluster
	{base: 7300, size: 7, from: 101, to: 103}, // a weekend venue
}

func main() {
	r := rand.New(rand.NewSource(33))
	var edges []tkc.Edge

	// Casual contacts throughout the observation period.
	for i := 0; i < casual; i++ {
		u := int64(r.Intn(people))
		v := int64(r.Intn(people))
		if u == v {
			continue
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: int64(1 + r.Intn(daysObs))})
	}

	// Planted high-contact clusters.
	for _, c := range clusters {
		for day := c.from; day <= c.to; day++ {
			for i := 0; i < c.size; i++ {
				for j := i + 1; j < c.size; j++ {
					if r.Float64() < 0.5 {
						edges = append(edges, tkc.Edge{U: c.base + int64(i), V: c.base + int64(j), Time: int64(day)})
					}
				}
			}
		}
	}

	g, err := tkc.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contact network: %d people, %d contacts over %d days\n\n",
		g.NumVertices(), g.NumEdges(), daysObs)

	// Enumerate every temporal k-core; keep, per distinct member set, the
	// tightest window in which it was fully connected.
	type hit struct {
		start, end int64
	}
	tightest := map[string]hit{}
	memberSets := map[string][]int64{}
	stats, err := g.CoresFunc(k, 1, daysObs, func(c tkc.Core) bool {
		m := members(c)
		// Ignore big diffuse cores; clusters of interest are small.
		if len(m) > 12 {
			return true
		}
		key := fmt.Sprint(m)
		h, ok := tightest[key]
		if !ok || c.End-c.Start < h.end-h.start {
			tightest[key] = hit{start: c.Start, end: c.End}
			memberSets[key] = m
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("examined %d temporal %d-cores\n", stats.Cores, k)
	fmt.Printf("candidate transmission clusters (small dense groups): %d\n\n", len(tightest))

	keys := make([]string, 0, len(tightest))
	for key := range tightest {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return tightest[keys[i]].start < tightest[keys[j]].start })
	for _, key := range keys {
		h := tightest[key]
		fmt.Printf("cluster active days [%d,%d]: people %v\n", h.start, h.end, memberSets[key])
	}

	fmt.Println("\nplanted outbreaks for comparison:")
	for _, c := range clusters {
		fmt.Printf("  people %d..%d active days [%d,%d]\n", c.base, c.base+int64(c.size)-1, c.from, c.to)
	}
}

func members(c tkc.Core) []int64 {
	seen := map[int64]bool{}
	for _, e := range c.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
