package temporalkcore_test

import (
	"sort"
	"strings"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/paperex"
)

// paperEdges returns the paper example shifted to non-contiguous raw
// timestamps (t -> 1000+10t) to exercise compression through the public
// API.
func paperEdges(shift bool) []tkc.Edge {
	out := make([]tkc.Edge, 0, len(paperex.Edges))
	for _, e := range paperex.Edges {
		t := e[2]
		if shift {
			t = 1000 + 10*e[2]
		}
		out = append(out, tkc.Edge{U: e[0], V: e[1], Time: t})
	}
	return out
}

func TestGraphBasics(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 9 || g.NumEdges() != 14 || g.TimestampCount() != 7 {
		t.Errorf("basics: %d %d %d", g.NumVertices(), g.NumEdges(), g.TimestampCount())
	}
	if g.KMax() != 2 {
		t.Errorf("KMax = %d, want 2", g.KMax())
	}
	min, max := g.TimeSpan()
	if min != 1 || max != 7 {
		t.Errorf("TimeSpan = %d..%d", min, max)
	}
}

func TestCoresMatchFigure2(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(true))
	if err != nil {
		t.Fatal(err)
	}
	// Raw range covering paper times 1..4.
	cores, err := g.Cores(2, 1010, 1040)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 2 {
		t.Fatalf("got %d cores, want 2: %+v", len(cores), cores)
	}
	sort.Slice(cores, func(i, j int) bool { return len(cores[i].Edges) < len(cores[j].Edges) })
	if cores[0].Start != 1020 || cores[0].End != 1030 || len(cores[0].Edges) != 3 {
		t.Errorf("small core: %+v", cores[0])
	}
	if cores[1].Start != 1010 || cores[1].End != 1040 || len(cores[1].Edges) != 6 {
		t.Errorf("large core: %+v", cores[1])
	}
}

func TestAllAlgorithmsAgreeViaAPI(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var counts []int64
	for _, algo := range []tkc.Algorithm{tkc.AlgoEnum, tkc.AlgoEnumBase, tkc.AlgoOTCD} {
		qs, err := g.CountCores(2, 1, 7, tkc.Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, qs.Cores)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Errorf("algorithms disagree: %v", counts)
	}
	if counts[0] == 0 {
		t.Error("no cores found")
	}
}

func TestCoresFuncEarlyStop(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	_, err = g.CoresFunc(2, 1, 7, func(tkc.Core) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("visited %d cores, want 2", n)
	}
}

func TestQueryErrors(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Cores(0, 1, 7); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.Cores(2, 100, 200); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
	if _, err := g.Cores(2, 7, 1); err != tkc.ErrEmptyRange {
		t.Errorf("inverted range: %v", err)
	}
	if _, err := tkc.NewGraph(nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestHighKNoCores(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	cores, err := g.Cores(5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 0 {
		t.Errorf("k=5 produced %d cores", len(cores))
	}
}

func TestCoreTimesAPI(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := g.CoreTimes(1, 2, 1, 7) // vertex v1
	if err != nil {
		t.Fatal(err)
	}
	want := paperex.VCT[1]
	if len(ents) != len(want) {
		t.Fatalf("v1 entries: %+v, want %v", ents, want)
	}
	for i, e := range ents {
		if e.Start != want[i][0] {
			t.Errorf("entry %d start = %d, want %d", i, e.Start, want[i][0])
		}
		if want[i][1] == paperex.Inf {
			if !e.Infinite {
				t.Errorf("entry %d should be infinite", i)
			}
		} else if e.Infinite || e.CoreTime != want[i][1] {
			t.Errorf("entry %d = %+v, want CT %d", i, e, want[i][1])
		}
	}
	if _, err := g.CoreTimes(999, 2, 1, 7); err == nil {
		t.Error("unknown vertex accepted")
	}
}

func TestVertexSets(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := g.VertexSets(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("got %d vertex sets: %v", len(sets), sets)
	}
	// {1,2,4} and {1,2,3,4,9}.
	joined := make([]string, len(sets))
	for i, s := range sets {
		parts := make([]string, len(s))
		for j, v := range s {
			parts[j] = string(rune('0' + v))
		}
		joined[i] = strings.Join(parts, ",")
	}
	sort.Strings(joined)
	if joined[0] != "1,2,3,4,9" || joined[1] != "1,2,4" {
		t.Errorf("vertex sets: %v", joined)
	}
}

func TestLoadAPI(t *testing.T) {
	g, err := tkc.Load(strings.NewReader("1 2 5\n2 3 6\n1 3 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	cores, err := g.Cores(2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 1 || len(cores[0].Edges) != 3 {
		t.Errorf("triangle query: %+v", cores)
	}
	if _, err := tkc.Load(strings.NewReader("garbage here\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestStatsReported(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.CountCores(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if qs.VCTSize != 24 || qs.ECSSize != 18 {
		t.Errorf("sizes: VCT=%d ECS=%d, want 24/18", qs.VCTSize, qs.ECSSize)
	}
	if qs.Edges < qs.Cores {
		t.Errorf("|R|=%d < cores=%d", qs.Edges, qs.Cores)
	}
}
