package temporalkcore_test

import (
	"bytes"
	"sort"
	"testing"

	tkc "temporalkcore"
)

func TestHistoricalIndexPaper(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.BuildHistoricalIndex(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h.KMax() != 2 {
		t.Fatalf("KMax = %d, want 2", h.KMax())
	}
	if h.Size() <= 0 {
		t.Error("empty index")
	}

	// The 2-core of [1,4] (Figure 2's larger core): {1,2,3,4,9}.
	members, err := h.CoreMembers(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	want := []int64{1, 2, 3, 4, 9}
	if len(members) != len(want) {
		t.Fatalf("members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v, want %v", members, want)
		}
	}

	edges, err := h.CoreEdges(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 6 {
		t.Errorf("core edges = %d, want 6", len(edges))
	}

	in, err := h.Contains(1, 2, 1, 4)
	if err != nil || !in {
		t.Errorf("Contains(1) = %v,%v, want true", in, err)
	}
	in, err = h.Contains(5, 2, 1, 4)
	if err != nil || in {
		t.Errorf("Contains(5) = %v,%v, want false", in, err)
	}
	if _, err := h.Contains(99, 2, 1, 4); err == nil {
		t.Error("unknown vertex accepted")
	}

	cn, err := h.CoreNumber(1, 1, 4)
	if err != nil || cn != 2 {
		t.Errorf("CoreNumber(1, [1,4]) = %d,%v, want 2", cn, err)
	}
	cn, err = h.CoreNumber(5, 1, 4)
	if err != nil || cn != 0 {
		t.Errorf("CoreNumber(5, [1,4]) = %d,%v, want 0", cn, err)
	}
	// v5 joins the 2-core only in windows reaching t=7.
	cn, err = h.CoreNumber(5, 6, 7)
	if err != nil || cn != 2 {
		t.Errorf("CoreNumber(5, [6,7]) = %d,%v, want 2", cn, err)
	}
}

func TestHistoricalIndexSaveLoad(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.BuildHistoricalIndex(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := g.LoadHistoricalIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := h.CoreMembers(2, 1, 4)
	b, _ := back.CoreMembers(2, 1, 4)
	if len(a) != len(b) {
		t.Fatalf("loaded index answers differently: %v vs %v", a, b)
	}
	if _, err := g.LoadHistoricalIndex(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk index accepted")
	}
}

func TestHistoricalIndexErrors(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BuildHistoricalIndex(50, 60); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
	h, err := g.BuildHistoricalIndex(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Queries outside the indexed range must fail loudly, not silently.
	if _, err := h.CoreMembers(2, 1, 7); err == nil {
		t.Error("query outside indexed range accepted")
	}
}
