package temporalkcore_test

import (
	"bytes"
	"context"
	"math/rand"
	"sort"
	"sync"
	"testing"

	tkc "temporalkcore"
)

func TestHistoricalIndexPaper(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.BuildHistoricalIndex(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h.KMax() != 2 {
		t.Fatalf("KMax = %d, want 2", h.KMax())
	}
	if h.Size() <= 0 {
		t.Error("empty index")
	}

	// The 2-core of [1,4] (Figure 2's larger core): {1,2,3,4,9}.
	members, err := h.CoreMembers(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	want := []int64{1, 2, 3, 4, 9}
	if len(members) != len(want) {
		t.Fatalf("members = %v, want %v", members, want)
	}
	for i := range want {
		if members[i] != want[i] {
			t.Fatalf("members = %v, want %v", members, want)
		}
	}

	edges, err := h.CoreEdges(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 6 {
		t.Errorf("core edges = %d, want 6", len(edges))
	}

	in, err := h.Contains(1, 2, 1, 4)
	if err != nil || !in {
		t.Errorf("Contains(1) = %v,%v, want true", in, err)
	}
	in, err = h.Contains(5, 2, 1, 4)
	if err != nil || in {
		t.Errorf("Contains(5) = %v,%v, want false", in, err)
	}
	if _, err := h.Contains(99, 2, 1, 4); err == nil {
		t.Error("unknown vertex accepted")
	}

	cn, err := h.CoreNumber(1, 1, 4)
	if err != nil || cn != 2 {
		t.Errorf("CoreNumber(1, [1,4]) = %d,%v, want 2", cn, err)
	}
	cn, err = h.CoreNumber(5, 1, 4)
	if err != nil || cn != 0 {
		t.Errorf("CoreNumber(5, [1,4]) = %d,%v, want 0", cn, err)
	}
	// v5 joins the 2-core only in windows reaching t=7.
	cn, err = h.CoreNumber(5, 6, 7)
	if err != nil || cn != 2 {
		t.Errorf("CoreNumber(5, [6,7]) = %d,%v, want 2", cn, err)
	}
}

func TestHistoricalIndexSaveLoad(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	h, err := g.BuildHistoricalIndex(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := g.LoadHistoricalIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := h.CoreMembers(2, 1, 4)
	b, _ := back.CoreMembers(2, 1, 4)
	if len(a) != len(b) {
		t.Fatalf("loaded index answers differently: %v vs %v", a, b)
	}
	if _, err := g.LoadHistoricalIndex(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk index accepted")
	}
}

func TestHistoricalIndexErrors(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BuildHistoricalIndex(50, 60); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
	h, err := g.BuildHistoricalIndex(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Queries outside the indexed range must fail loudly, not silently.
	if _, err := h.CoreMembers(2, 1, 7); err == nil {
		t.Error("query outside indexed range accepted")
	}
}

// timeBatch generates a time-ordered append batch whose first timestamp is
// >= from, over the vertex universe [0, n).
func timeBatch(r *rand.Rand, n int, m int, from int64) []tkc.Edge {
	batch := make([]tkc.Edge, 0, m)
	tme := from
	for len(batch) < m {
		u, v := int64(r.Intn(n)), int64(r.Intn(n))
		if u == v {
			continue
		}
		if r.Intn(3) == 0 {
			tme++
		}
		batch = append(batch, tkc.Edge{U: u, V: v, Time: tme})
	}
	return batch
}

// TestHistoricalIndexCacheHit: a repeat HistoricalIndex call on the same
// graph state and range is a warm cache hit, and the hit answers exactly
// like the build. With the cache disabled the path still serves correctly.
func TestHistoricalIndexCacheHit(t *testing.T) {
	g := reqGraph(t, 31, 40, 400)
	lo, hi := g.TimeSpan()
	ctx := context.Background()

	base := g.CacheStats()
	h1, err := g.HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	afterBuild := g.CacheStats()
	if afterBuild.Misses != base.Misses+1 {
		t.Errorf("first build: misses %d -> %d, want one new miss", base.Misses, afterBuild.Misses)
	}
	h2, err := g.HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	afterHit := g.CacheStats()
	if afterHit.Hits != afterBuild.Hits+1 {
		t.Errorf("repeat build: hits %d -> %d, want one new hit", afterBuild.Hits, afterHit.Hits)
	}
	for k := 1; k <= h1.KMax(); k++ {
		a, err := h1.CoreMembers(k, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h2.CoreMembers(k, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("k=%d: cached index answers differently: %d vs %d members", k, len(a), len(b))
		}
	}

	g.SetCacheOptions(tkc.CacheOptions{Disable: true})
	h3, err := g.HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if h3.KMax() != h1.KMax() {
		t.Errorf("uncached path KMax = %d, want %d", h3.KMax(), h1.KMax())
	}
}

// TestHistoricalIndexPatchAfterAppend grows the graph at the time frontier
// and cross-checks the (incrementally patched) index against from-scratch
// snapshot peeling on many windows and k.
func TestHistoricalIndexPatchAfterAppend(t *testing.T) {
	g := reqGraph(t, 32, 30, 300)
	ctx := context.Background()
	lo, hi := g.TimeSpan()
	if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil { // seeds the patch oracle
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(5))
	for round := 0; round < 3; round++ {
		_, cur := g.TimeSpan()
		if _, err := g.Append(timeBatch(r, 30, 120, cur)...); err != nil {
			t.Fatal(err)
		}
		lo, hi = g.TimeSpan()
		h, err := g.HistoricalIndex(ctx, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 3; k++ {
			for trial := 0; trial < 6; trial++ {
				s := lo + int64(r.Intn(int(hi-lo+1)))
				e := s + int64(r.Intn(int(hi-s+1)))
				got, err := h.CoreMembers(k, s, e)
				if err != nil {
					t.Fatal(err)
				}
				want, ok, err := g.Query(k).Window(s, e).Snapshot(1).Project(tkc.ProjectVertices).First(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if !ok && len(got) != 0 {
					t.Fatalf("round %d k=%d [%d,%d]: index says %d members, peeler says empty", round, k, s, e, len(got))
				}
				if ok {
					if len(got) != len(want.Vertices) {
						t.Fatalf("round %d k=%d [%d,%d]: index %d members, peeler %d", round, k, s, e, len(got), len(want.Vertices))
					}
					for i := range got {
						if got[i] != want.Vertices[i] {
							t.Fatalf("round %d k=%d [%d,%d]: member lists differ at %d", round, k, s, e, i)
						}
					}
				}
			}
		}
	}
}

// TestHistoricalIndexEpochPinned: an index keeps answering for the epoch it
// was built from while the live graph grows past it — appended edges never
// leak into old answers — and a fresh index sees the new state.
func TestHistoricalIndexEpochPinned(t *testing.T) {
	g, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1},
		{U: 2, V: 3, Time: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := g.HistoricalIndex(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.CoreMembers(2, 1, 2); len(got) != 0 {
		t.Fatalf("path graph has a 2-core: %v", got)
	}

	// Close the triangle after the index is pinned.
	if _, err := g.Append(tkc.Edge{U: 1, V: 3, Time: 3}); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.CoreMembers(2, 1, 2); len(got) != 0 {
		t.Fatalf("append leaked into the pinned index: %v", got)
	}
	if h.Seq() != 0 {
		t.Errorf("pinned index seq = %d, want 0", h.Seq())
	}

	h2, err := g.HistoricalIndex(ctx, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Seq() != 1 {
		t.Errorf("fresh index seq = %d, want 1", h2.Seq())
	}
	got, err := h2.CoreMembers(2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("triangle 2-core = %v, want 3 members", got)
	}
}

// TestHistoricalIndexConcurrentAppend hammers pinned indexes and
// Latest-epoch index builds from reader goroutines while the writer
// appends and publishes — the -race proof of the epoch-pinned memory
// model.
func TestHistoricalIndexConcurrentAppend(t *testing.T) {
	g := reqGraph(t, 33, 40, 500)
	ctx := context.Background()
	lo, hi := g.TimeSpan()
	h, err := g.HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	g.Publish()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := h.CoreMembers(2, lo, hi); err != nil {
					t.Errorf("pinned index query: %v", err)
					return
				}
				s := g.Latest()
				sLo, sHi := s.TimeSpan()
				hh, err := s.HistoricalIndex(ctx, sLo, sHi)
				if err != nil {
					t.Errorf("latest-epoch index: %v", err)
					return
				}
				if _, err := hh.CoreMembers(2, sLo, sHi); err != nil {
					t.Errorf("latest-epoch query: %v", err)
					return
				}
			}
		}()
	}

	r := rand.New(rand.NewSource(11))
	for round := 0; round < 25; round++ {
		_, cur := g.TimeSpan()
		if _, err := g.Append(timeBatch(r, 40, 40, cur)...); err != nil {
			t.Fatal(err)
		}
		g.Publish()
		wLo, wHi := g.TimeSpan()
		if _, err := g.HistoricalIndex(ctx, wLo, wHi); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadHistoricalIndexRejectsMismatch: the fingerprint embedded by Save
// rejects loads against a different graph and against a later epoch of the
// same graph.
func TestLoadHistoricalIndexRejectsMismatch(t *testing.T) {
	// g2 differs from g1 in its vertex universe: the fingerprint records
	// counts and the mutation sequence (not a content hash), so the
	// guaranteed-detected mismatch is a differently-sized graph.
	g1 := reqGraph(t, 34, 20, 150)
	g2 := reqGraph(t, 35, 26, 150)
	lo, hi := g1.TimeSpan()
	h, err := g1.HistoricalIndex(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	if _, err := g2.LoadHistoricalIndex(bytes.NewReader(saved)); err == nil {
		t.Error("index loaded against a different graph")
	}
	if _, err := g1.Append(tkc.Edge{U: 0, V: 1, Time: hi + 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := g1.LoadHistoricalIndex(bytes.NewReader(saved)); err == nil {
		t.Error("index loaded against a later epoch of its graph")
	}
}
