package temporalkcore_test

import (
	"context"
	"strings"
	"testing"

	tkc "temporalkcore"
)

// TestParseProjectionAlgorithm locks the wire-name tables: every name the
// serving layer documents maps to its builder constant, the empty string is
// the builder default, and anything else is a structured error naming the
// valid choices.
func TestParseProjectionAlgorithm(t *testing.T) {
	projCases := []struct {
		in   string
		want tkc.Projection
	}{
		{"", tkc.ProjectEdges},
		{"edges", tkc.ProjectEdges},
		{"vertices", tkc.ProjectVertices},
		{"count", tkc.ProjectCount},
	}
	for _, c := range projCases {
		got, err := tkc.ParseProjection(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseProjection(%q) = %v, %v; want %v, nil", c.in, got, err, c.want)
		}
	}
	if _, err := tkc.ParseProjection("triangles"); err == nil || !strings.Contains(err.Error(), "triangles") {
		t.Errorf("ParseProjection(triangles) error = %v; want error naming the input", err)
	}

	algoCases := []struct {
		in   string
		want tkc.Algorithm
	}{
		{"", tkc.AlgoEnum},
		{"enum", tkc.AlgoEnum},
		{"base", tkc.AlgoEnumBase},
		{"otcd", tkc.AlgoOTCD},
	}
	for _, c := range algoCases {
		got, err := tkc.ParseAlgorithm(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v, nil", c.in, got, err, c.want)
		}
	}
	if _, err := tkc.ParseAlgorithm("quantum"); err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Errorf("ParseAlgorithm(quantum) error = %v; want error naming the input", err)
	}
}

// TestQueryJSONRequest locks the wire struct's compilation onto the v2
// builder: each body compiles to the same results as the equivalent
// hand-built Request, and invalid bodies fail eagerly instead of at
// stream time.
func TestQueryJSONRequest(t *testing.T) {
	g := reqGraph(t, 7, 40, 400)
	ctx := context.Background()
	lo, hi := g.TimeSpan()
	mid := lo + (hi-lo)/2

	run := func(t *testing.T, q tkc.QueryJSON, want *tkc.Request) {
		t.Helper()
		r, err := q.Request(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		coresEqual(t, "wire vs builder", got, ref)
	}

	t.Run("minimal body is the builder default", func(t *testing.T) {
		run(t, tkc.QueryJSON{K: 2}, g.Query(2))
	})
	t.Run("window bounds", func(t *testing.T) {
		run(t, tkc.QueryJSON{K: 2, Start: &lo, End: &mid}, g.Query(2).Window(lo, mid))
	})
	t.Run("omitted start defaults to history begin", func(t *testing.T) {
		run(t, tkc.QueryJSON{K: 2, End: &mid}, g.Query(2).Window(lo, mid))
	})
	t.Run("projection and algorithm", func(t *testing.T) {
		run(t, tkc.QueryJSON{K: 2, Project: "vertices", Algorithm: "base"},
			g.Query(2).Project(tkc.ProjectVertices).Algorithm(tkc.AlgoEnumBase))
	})
	t.Run("count with early stop", func(t *testing.T) {
		run(t, tkc.QueryJSON{K: 2, Project: "count", EarlyStop: 3},
			g.Query(2).Project(tkc.ProjectCount).EarlyStop(3))
	})

	bad := []tkc.QueryJSON{
		{K: 0},
		{K: -4},
		{K: 2, Project: "triangles"},
		{K: 2, Algorithm: "quantum"},
	}
	for _, q := range bad {
		if r, err := q.Request(g); err == nil {
			t.Errorf("Request(%+v) = %v, nil; want eager validation error", q, r)
		}
	}
}
