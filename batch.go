package temporalkcore

import (
	"fmt"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
)

// QuerySpec is one query of a batch: the core parameter k and a raw
// (inclusive) time range, optionally pinned to a specific algorithm (the
// zero value is the paper's optimal Enum).
type QuerySpec struct {
	K          int
	Start, End int64
	Algorithm  Algorithm
}

// BatchOptions tunes QueryBatch.
type BatchOptions struct {
	// Parallelism caps the number of worker goroutines; <= 0 means one per
	// available CPU (GOMAXPROCS).
	Parallelism int
	// CountOnly skips materialising result cores: BatchResult.Cores stays
	// nil and only BatchResult.Stats is populated. Use it for workloads
	// that need counts, |R| or timings but not the edge sets.
	CountOnly bool
}

// BatchResult is the outcome of one QuerySpec.
type BatchResult struct {
	Spec  QuerySpec
	Cores []Core // nil under BatchOptions.CountOnly or on error
	Stats QueryStats
	Err   error
}

// QueryBatch executes many (k, time-range) queries concurrently on a pool
// of workers, each reusing pooled per-worker scratch state, so large query
// workloads exploit every core without paying per-query setup allocations.
// Results arrive at the index of their spec; a spec that fails validation
// reports through its BatchResult.Err without failing the batch.
func (g *Graph) QueryBatch(specs []QuerySpec, opts ...BatchOptions) []BatchResult {
	opt := BatchOptions{}
	if len(opts) > 0 {
		opt = opts[0]
	}

	res := make([]BatchResult, len(specs))
	queries := make([]core.BatchQuery, 0, len(specs))
	sinks := make([]enum.Sink, 0, len(specs))
	run := make([]int, 0, len(specs)) // batch item -> spec index

	for i, sp := range specs {
		res[i].Spec = sp
		if sp.K < 1 {
			res[i].Err = fmt.Errorf("temporalkcore: k must be >= 1, got %d", sp.K)
			continue
		}
		w, err := g.window(sp.Start, sp.End)
		if err != nil {
			res[i].Err = err
			continue
		}
		r := &res[i]
		var sink enum.Sink
		if opt.CountOnly {
			// Count straight off the edge-id slices: converting every edge
			// to labels/raw times just to discard it would make count-only
			// batches pay nearly the full materialisation CPU cost.
			sink = &statsSink{qs: &r.Stats}
		} else {
			sink = &funcSink{g: g.g, qs: &r.Stats, fn: func(c Core) bool {
				cp := c
				cp.Edges = append([]Edge(nil), c.Edges...)
				r.Cores = append(r.Cores, cp)
				return true
			}}
		}
		queries = append(queries, core.BatchQuery{K: sp.K, W: w, Opts: core.Options{Algorithm: sp.Algorithm}})
		sinks = append(sinks, sink)
		run = append(run, i)
	}

	batch := core.QueryBatch(g.g, queries, opt.Parallelism, func(i int) enum.Sink { return sinks[i] })
	for bi, br := range batch {
		r := &res[run[bi]]
		r.Err = br.Err
		if br.Err != nil {
			r.Cores = nil
			r.Stats = QueryStats{}
			continue
		}
		r.Stats.VCTSize = br.Stats.VCTSize
		r.Stats.ECSSize = br.Stats.ECSSize
		r.Stats.CoreTime = br.Stats.CoreTime
		r.Stats.EnumTime = br.Stats.EnumTime
	}
	return res
}

// statsSink counts cores and |R| directly from the emitted edge-id slices,
// with none of funcSink's per-edge label/time conversion.
type statsSink struct{ qs *QueryStats }

func (s *statsSink) Emit(_ tgraph.Window, eids []tgraph.EID) bool {
	s.qs.Cores++
	s.qs.Edges += int64(len(eids))
	return true
}

// CountBatch is QueryBatch with BatchOptions.CountOnly set: it returns the
// per-query statistics (core counts, |R|, index sizes, phase timings)
// without materialising any edges.
func (g *Graph) CountBatch(specs []QuerySpec, parallelism int) []BatchResult {
	return g.QueryBatch(specs, BatchOptions{Parallelism: parallelism, CountOnly: true})
}
