package temporalkcore

import (
	"context"
	"fmt"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// QuerySpec is one query of a batch: the core parameter k and a raw
// (inclusive) time range, optionally pinned to a specific algorithm (the
// zero value is the paper's optimal Enum).
type QuerySpec struct {
	K          int
	Start, End int64
	Algorithm  Algorithm
}

// BatchOptions tunes RunBatch.
type BatchOptions struct {
	// Parallelism caps the number of worker goroutines; <= 0 means one per
	// available CPU (GOMAXPROCS).
	Parallelism int
	// CountOnly skips materialising result cores for every request:
	// BatchResult.Cores stays nil and only BatchResult.Stats is populated.
	// Use it for workloads that need counts, |R| or timings but not the
	// edge sets. Per-request Project(ProjectCount) does the same for a
	// single item.
	CountOnly bool
}

// BatchResult is the outcome of one batch request.
type BatchResult struct {
	Spec  QuerySpec
	Cores []Core // nil under count-only; partial when Cancelled mid-query
	Stats QueryStats
	Err   error
	// Cancelled reports that the batch context was cancelled before this
	// request completed. Err carries the context error; Cores holds
	// whatever prefix was enumerated before the cut (nil if it never ran).
	Cancelled bool
}

// RunBatch executes many v2 Requests concurrently on a pool of workers,
// each reusing pooled per-worker scratch state, so large query workloads
// exploit every CPU without paying per-query setup allocations. Results
// arrive at the index of their request; a request that fails validation
// reports through its BatchResult.Err without failing the batch.
//
// Only one-shot enumeration requests built with Graph.Query may be
// batched (prepared, watcher, snapshot and historical requests have their
// own engines); a request bound to another engine or another graph
// reports an error in its slot. Requests built from Snapshots of the same
// graph are accepted and execute pinned to their own epoch, so a serving
// batch can mix epochs while the writer appends. Per-request options —
// Window, Algorithm, Project, EarlyStop — all apply.
//
// Cancelling ctx stops the batch early: completed requests keep their
// results, the in-flight ones are cut at the next poll stride, and every
// request that did not finish reports Cancelled with Err = ctx.Err(), so
// callers always get the partial work that was already paid for.
//
// tkc:allow-background: tolerates nil ctx from v1 callers
func (g *Graph) RunBatch(ctx context.Context, reqs []*Request, opts ...BatchOptions) []BatchResult {
	opt := BatchOptions{}
	if len(opts) > 0 {
		opt = opts[0]
	}
	if ctx == nil {
		ctx = context.Background()
	}

	res := make([]BatchResult, len(reqs))
	queries := make([]core.BatchQuery, 0, len(reqs))
	sinks := make([]enum.Sink, 0, len(reqs))
	run := make([]int, 0, len(reqs)) // batch item -> request index

	for i, r := range reqs {
		if r == nil {
			res[i].Err = fmt.Errorf("temporalkcore: nil request in batch")
			continue
		}
		res[i].Spec = QuerySpec{K: r.k, Start: r.start, End: r.end, Algorithm: r.algo}
		if r.err != nil {
			res[i].Err = r.err
			continue
		}
		if r.prep != nil || r.watch != nil || r.hix != nil || r.h > 0 {
			res[i].Err = fmt.Errorf("temporalkcore: only one-shot enumeration requests can be batched")
			continue
		}
		// Requests pinned to any epoch of the same underlying graph are
		// accepted: each item executes against the graph state it was
		// built from (live graph or frozen snapshot), so one batch can mix
		// epochs while the writer keeps appending.
		if r.g != g && r.g.origin != g.origin {
			res[i].Err = fmt.Errorf("temporalkcore: batched request belongs to a different graph")
			continue
		}
		w, err := r.g.window(r.start, r.end)
		if err != nil {
			res[i].Err = err
			continue
		}
		rr := &res[i]
		proj := r.proj
		if opt.CountOnly {
			proj = ProjectCount
		}
		var sink enum.Sink
		if proj == ProjectCount {
			// Count straight off the edge-id slices: converting every edge
			// to labels/raw times just to discard it would make count-only
			// batches pay nearly the full materialisation CPU cost.
			sink = &statsSink{qs: &rr.Stats}
		} else {
			sink = &projSink{g: r.g.g, proj: proj, qs: &rr.Stats, fn: func(c Core) bool {
				cp := c
				cp.Edges = append([]Edge(nil), c.Edges...)
				cp.Vertices = append([]int64(nil), c.Vertices...)
				rr.Cores = append(rr.Cores, cp)
				return true
			}}
		}
		if r.limit > 0 {
			sink = &enum.LimitSink{Inner: sink, Max: int64(r.limit)}
		}
		queries = append(queries, core.BatchQuery{G: r.g.g, K: r.k, W: w, Opts: core.Options{Algorithm: r.algo}})
		sinks = append(sinks, sink)
		run = append(run, i)
	}

	// Serving-cache hookup: every cacheable item resolves its CoreTime
	// tables through the cache from inside the worker that claims it.
	// Identical (epoch seq, k, window) keys collapse to one build via the
	// cache's singleflight — the first worker builds, workers on the same
	// key wait and share, and workers on other items keep pipelining (no
	// batch-wide barrier). The build is also shared with concurrent
	// executions outside the batch, and its tables stay resident for
	// future ones. A resolve that fails (cancellation) falls back to the
	// per-item engine, which reports the cancellation with the standard
	// batch semantics.
	type cacheInfo struct {
		resolved bool
		hit      bool
		shared   bool
		coreTime time.Duration
	}
	info := make([]cacheInfo, len(queries))
	if c := g.cache(); c != nil {
		for bi := range queries {
			q := &queries[bi]
			if !cacheable(q.Opts.Algorithm) {
				continue
			}
			bi := bi
			rg := reqs[run[bi]].g
			key := rg.cacheKey(q.K, q.W, q.Opts.Algorithm)
			q.Resolve = func(ctx context.Context) (*vct.Index, *vct.ECS, error) {
				if ctx == nil {
					ctx = context.Background()
				}
				if c.Uncacheable(key) {
					return nil, nil, nil // known-oversize: build on pooled scratch instead
				}
				ent, how, err := c.GetOrBuild(ctx, key, func() (*qcache.Entry, error) {
					return rg.buildCacheEntry(ctx, key.K, key.W)
				})
				if err != nil {
					return nil, nil, err
				}
				// Each worker owns its item's slot; no synchronisation
				// needed.
				in := &info[bi]
				in.resolved = true
				in.hit = how != qcache.Built
				in.shared = how == qcache.Shared
				if how == qcache.Built {
					in.coreTime = ent.CoreTime
				}
				return ent.Ix, ent.Ecs, nil
			}
		}
	}

	batch := core.QueryBatch(ctx, g.g, queries, opt.Parallelism, func(i int) enum.Sink { return sinks[i] })
	for bi, br := range batch {
		r := &res[run[bi]]
		r.Err = br.Err
		r.Cancelled = br.Cancelled
		if br.Err != nil {
			if !br.Cancelled {
				r.Cores = nil
				r.Stats = QueryStats{}
			}
			continue
		}
		r.Stats.VCTSize = br.Stats.VCTSize
		r.Stats.ECSSize = br.Stats.ECSSize
		r.Stats.CoreTime = br.Stats.CoreTime
		r.Stats.EnumTime = br.Stats.EnumTime
		if in := info[bi]; in.resolved {
			r.Stats.CacheHit = in.hit
			r.Stats.CacheShared = in.shared
			r.Stats.CoreTime = in.coreTime // zero unless this item ran the build
		}
	}
	// Honour each request's Stats destination, matching the direct
	// executors (written after the run, cancelled or not).
	for i, r := range reqs {
		if r != nil && r.statsDst != nil {
			*r.statsDst = res[i].Stats
		}
	}
	return res
}

// QueryBatch executes many (k, time-range) query specs concurrently; see
// RunBatch for the execution model.
//
// Deprecated: use the v2 builder with RunBatch, which adds context
// cancellation and per-request projections/limits:
//
//	g.RunBatch(ctx, []*temporalkcore.Request{
//	    g.Query(2).Window(s, e),
//	    g.Query(3).Window(s, e).Project(temporalkcore.ProjectCount),
//	}, opts)
//
// tkc:allow-background: ctx-less convenience wrapper; RunBatch takes ctx
func (g *Graph) QueryBatch(specs []QuerySpec, opts ...BatchOptions) []BatchResult {
	reqs := make([]*Request, len(specs))
	for i, sp := range specs {
		reqs[i] = g.Query(sp.K).Window(sp.Start, sp.End).Algorithm(sp.Algorithm)
	}
	res := g.RunBatch(context.Background(), reqs, opts...)
	for i, sp := range specs {
		res[i].Spec = sp // preserve the caller's spec verbatim
	}
	return res
}

// statsSink counts cores and |R| directly from the emitted edge-id slices,
// with none of projSink's per-edge label/time conversion.
type statsSink struct{ qs *QueryStats }

func (s *statsSink) Emit(_ tgraph.Window, eids []tgraph.EID) bool {
	s.qs.Cores++
	s.qs.Edges += int64(len(eids))
	return true
}

// CountBatch is QueryBatch with BatchOptions.CountOnly set: it returns the
// per-query statistics (core counts, |R|, index sizes, phase timings)
// without materialising any edges.
//
// Deprecated: use RunBatch with BatchOptions.CountOnly or per-request
// Project(ProjectCount).
func (g *Graph) CountBatch(specs []QuerySpec, parallelism int) []BatchResult {
	return g.QueryBatch(specs, BatchOptions{Parallelism: parallelism, CountOnly: true})
}
