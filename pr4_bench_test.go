package temporalkcore_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tkc "temporalkcore"
)

// serveSetup builds the CM replica for the sustained-serving benchmark:
// the full replica as the base graph, the same edge list as the
// (re-timed) churn source, and the trailing-window span readers query.
func serveSetup(b testing.TB) (g *tkc.Graph, w *tkc.Watcher, churn []tkc.Edge, span int64) {
	b.Helper()
	all := cmEdges(b, benchEdges)
	g, err := tkc.NewGraph(all)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	span = (hi - lo) / 10 // trailing 10% of raw time
	w, err = g.Watch(8, span)
	if err != nil {
		b.Fatal(err)
	}
	return g, w, all, span
}

// churner streams re-timed replica edges through appendFn in paced
// batches of ~1% of the graph each for as long as stop stays open. The
// churn source is the replica's own edge list shifted past the frontier,
// so appended windows keep the dataset's hub structure (a thin random
// tail would leave the serving window coreless) and the trailing-window
// queries always have real work to do.
func churner(b testing.TB, g *tkc.Graph, churn []tkc.Edge, stop <-chan struct{}, appendFn func([]tkc.Edge) error) (*sync.WaitGroup, *atomic.Int64) {
	b.Helper()
	var wg sync.WaitGroup
	var batches atomic.Int64
	_, hi := g.TimeSpan()
	srcLo := churn[0].Time
	srcSpan := churn[len(churn)-1].Time - srcLo + 1
	offset := hi - srcLo + 1
	batch := len(churn) / 100 // ~1% of the replica per batch
	if batch < 1 {
		batch = 1
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i += batch {
			select {
			case <-stop:
				return
			default:
			}
			o, j := offset, i%len(churn)
			k := min(j+batch, len(churn))
			bs := make([]tkc.Edge, k-j)
			for bi, e := range churn[j:k] {
				bs[bi] = tkc.Edge{U: e.U, V: e.V, Time: e.Time + o}
			}
			if k == len(churn) {
				offset += srcSpan // next pass shifts past this one
				i = -batch
			}
			if err := appendFn(bs); err != nil {
				b.Error(err)
				return
			}
			batches.Add(1)
			time.Sleep(2 * time.Millisecond) // a paced stream, not a tight spin
		}
	}()
	return &wg, &batches
}

// BenchmarkConcurrentServe measures sustained trailing-window read cost
// while ~1% of the CM replica churns in concurrently — the serving
// scenario the epoch layer exists for — in two modes:
//
//   - epoch: the writer appends through Watcher.Append (freeze + publish
//     per batch) and readers use the lock-free pinned-view read path;
//     reads never block on the writer.
//   - rwmutex: the coarse-lock baseline — a global RWMutex, writer
//     appends directly to the live graph under Lock, readers query under
//     RLock (the first reader after each batch repairs the tables).
//
// Reported metrics: ns/op of one read query, max single-read latency
// (maxread-ms: the reader stall a coarse lock causes while a batch lands),
// and append batches completed per second alongside the reads.
func BenchmarkConcurrentServe(b *testing.B) {
	ctx := context.Background()

	b.Run("epoch", func(b *testing.B) {
		g, w, churn, _ := serveSetup(b)
		stop := make(chan struct{})
		wg, batches := churner(b, g, churn, stop, func(bs []tkc.Edge) error {
			_, err := w.Append(bs...)
			return err
		})
		b.ReportAllocs()
		b.ResetTimer()
		var maxRead time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := w.Query().Count(ctx); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d > maxRead {
				maxRead = d
			}
		}
		elapsed := b.Elapsed()
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(maxRead.Milliseconds()), "maxread-ms")
		if s := elapsed.Seconds(); s > 0 {
			b.ReportMetric(float64(batches.Load())/s, "appends/s")
		}
	})

	b.Run("rwmutex", func(b *testing.B) {
		g, w, churn, _ := serveSetup(b)
		var mu sync.RWMutex
		stop := make(chan struct{})
		wg, batches := churner(b, g, churn, stop, func(bs []tkc.Edge) error {
			mu.Lock()
			defer mu.Unlock()
			_, err := g.Append(bs...)
			return err
		})
		b.ReportAllocs()
		b.ResetTimer()
		var maxRead time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			mu.RLock()
			_, err := w.Query().Count(ctx) // stale after each batch: repairs under RLock
			mu.RUnlock()
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d > maxRead {
				maxRead = d
			}
		}
		elapsed := b.Elapsed()
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(maxRead.Milliseconds()), "maxread-ms")
		if s := elapsed.Seconds(); s > 0 {
			b.ReportMetric(float64(batches.Load())/s, "appends/s")
		}
	})
}

// BenchmarkAppendUnderAnalytics measures writer append latency while a
// background goroutine continuously runs long full-range analytical count
// queries — the pathology a coarse lock cannot avoid: under rwmutex every
// append waits out the in-flight read (hundreds of ms), while under epoch
// isolation the analytical reader holds a pinned snapshot and the writer
// appends at its own pace. Unlike read-side stalls, this difference is
// lock-induced rather than CPU-induced, so it is observable even on the
// single-CPU containers this repository benchmarks on.
func BenchmarkAppendUnderAnalytics(b *testing.B) {
	ctx := context.Background()
	mkBatch := func(g *tkc.Graph, i int) []tkc.Edge {
		_, hi := g.TimeSpan()
		bs := make([]tkc.Edge, 16)
		for j := range bs {
			bs[j] = tkc.Edge{U: int64((i*16+j)*7%97) + 1, V: int64((i*16+j)*13%89) + 98, Time: hi + 1}
		}
		return bs
	}

	b.Run("epoch", func(b *testing.B) {
		g, w, _, _ := serveSetup(b)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads atomic.Int64
		var inFlight atomic.Bool
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := g.Latest()
				lo, hi := s.TimeSpan()
				inFlight.Store(true)
				if _, err := s.Query(8).Window(lo, hi).Count(ctx); err != nil {
					b.Error(err)
					return
				}
				inFlight.Store(false)
				reads.Add(1)
			}
		}()
		for !inFlight.Load() {
			time.Sleep(100 * time.Microsecond) // let the analytic read start
		}
		b.ResetTimer()
		var maxAppend time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := w.Append(mkBatch(g, i)...); err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d > maxAppend {
				maxAppend = d
			}
			b.StopTimer()
			time.Sleep(time.Millisecond) // yield CPU to the reader
			b.StartTimer()
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(maxAppend.Microseconds())/1000, "maxappend-ms")
		b.ReportMetric(float64(reads.Load()), "analytic-reads")
	})

	b.Run("rwmutex", func(b *testing.B) {
		g, _, _, _ := serveSetup(b)
		var mu sync.RWMutex
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var reads atomic.Int64
		var inFlight atomic.Bool
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				inFlight.Store(true)
				lo, hi := g.TimeSpan()
				_, err := g.Query(8).Window(lo, hi).Count(ctx)
				inFlight.Store(false)
				mu.RUnlock()
				if err != nil {
					b.Error(err)
					return
				}
				reads.Add(1)
			}
		}()
		for !inFlight.Load() {
			time.Sleep(100 * time.Microsecond) // let the analytic read start
		}
		b.ResetTimer()
		var maxAppend time.Duration
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			mu.Lock()
			_, err := g.Append(mkBatch(g, i)...)
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
			if d := time.Since(t0); d > maxAppend {
				maxAppend = d
			}
			b.StopTimer()
			time.Sleep(time.Millisecond) // yield CPU to the reader
			b.StartTimer()
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(maxAppend.Microseconds())/1000, "maxappend-ms")
		b.ReportMetric(float64(reads.Load()), "analytic-reads")
	})
}
