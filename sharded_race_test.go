package temporalkcore_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	tkc "temporalkcore"
)

// TestShardedRacingDifferential is the racing differential suite of the
// shard layer, in the mould of TestConcurrentAppendVsQueryDifferential:
// reader goroutines continuously pin the latest published ShardedView and
// run scatter-gather queries while the writer appends the edge-stream tail
// and the frontier auto-seals — the directory grows mid-test, so readers
// hold views of different shard counts concurrently. Every sharded result
// must (a) byte-match the unsharded enumeration of the same pinned epoch,
// inline, and (b) fingerprint-match a quiesced from-scratch rebuild of the
// same edge prefix, verified after the churn. Run under -race this also
// proves the shard runtime's memory-model claims.
func TestShardedRacingDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const k = 6
	all := cmEdges(t, 1100)
	cut := len(all) * 94 / 100
	sg, err := tkc.ShardGraph(mustGraph(t, all[:cut]), tkc.ShardOptions{
		Shards:        3,
		MaxShardEdges: 20, // churn: nearly every writer batch seals a shard
		Replicas:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	startShards := sg.NumShards()

	type obs struct {
		seq    int64
		edges  int
		shards int
		fp     string
	}
	var mu sync.Mutex
	seen := map[int64]obs{}
	spanning := false // some query stitched across a cut mid-churn
	observed := func(seq int64) bool {
		mu.Lock()
		defer mu.Unlock()
		_, ok := seen[seq]
		return ok
	}
	record := func(o obs, patched int) error {
		mu.Lock()
		defer mu.Unlock()
		if patched > 0 {
			spanning = true
		}
		if prev, ok := seen[o.seq]; ok {
			if prev.fp != o.fp || prev.edges != o.edges {
				return fmt.Errorf("epoch %d served two different sharded results (%d vs %d shards):\n%q\n%q",
					o.seq, prev.shards, o.shards, prev.fp, o.fp)
			}
			return nil
		}
		seen[o.seq] = o
		return nil
	}

	ctx := context.Background()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v := sg.Latest()
				snap := v.Snapshot()
				lo, hi := snap.TimeSpan()
				ws := hi - (hi-lo)/10

				// Inline byte-match: the scatter-gather stream against the
				// unsharded enumeration of the exact same pinned epoch.
				want, err := snap.Query(k).Window(ws, hi).Collect(ctx)
				if err != nil {
					t.Errorf("oracle on epoch %d: %v", v.Seq(), err)
					return
				}
				var st tkc.QueryStats
				got, err := v.Query(k).Window(ws, hi).Stats(&st).Collect(ctx)
				if err != nil {
					t.Errorf("sharded query on epoch %d: %v", v.Seq(), err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("epoch %d (%d shards): sharded stream diverged from the unsharded oracle (%d vs %d cores)",
						v.Seq(), v.NumShards(), len(got), len(want))
					return
				}

				fp, err := fingerprintFrom(snap.Graph, v, k)
				if err != nil {
					t.Errorf("fingerprint on epoch %d: %v", v.Seq(), err)
					return
				}
				if err := record(obs{seq: v.Seq(), edges: snap.NumEdges(), shards: v.NumShards(), fp: fp}, st.Patched); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Writer: append the tail in small batches; MaxShardEdges keeps the
	// frontier sealing underneath the readers. Bounded waits make readers
	// provably observe many distinct epochs rather than racing to the end.
	const batch = 8
	for i := cut; i < len(all); i += batch {
		j := min(i+batch, len(all))
		if _, err := sg.Append(all[i:j]...); err != nil {
			t.Fatal(err)
		}
		seq := sg.Latest().Seq()
		for wait := 0; wait < 20000 && !observed(seq) && !t.Failed(); wait++ {
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(seen) < 2 {
		t.Fatalf("readers observed only %d distinct epochs; the race window never opened", len(seen))
	}
	if sg.NumShards() <= startShards {
		t.Fatalf("frontier never sealed mid-test (%d shards throughout)", startShards)
	}
	if !spanning {
		t.Fatal("no query stitched across a shard cut; the boundary case went unexercised")
	}

	// Quiesced verification: rebuild every observed epoch's edge prefix
	// from scratch and demand fingerprint-identical results.
	for seq, o := range seen {
		rebuilt := mustGraph(t, all[:o.edges])
		want, err := coreFingerprint(rebuilt, k)
		if err != nil {
			t.Fatal(err)
		}
		if o.fp != want {
			t.Errorf("epoch %d (%d edges, %d shards): sharded result differs from the quiesced rebuild:\n got %q\nwant %q",
				seq, o.edges, o.shards, o.fp, want)
		}
	}
}

func mustGraph(t testing.TB, edges []tkc.Edge) *tkc.Graph {
	t.Helper()
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
